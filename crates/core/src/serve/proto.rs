//! The serving daemon's length-prefixed binary wire protocol.
//!
//! Every frame is an 8-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length, u32 little-endian (bytes after the header)
//! 4       1     protocol version (PROTO_VERSION)
//! 5       1     frame kind
//! 6       2     reserved, must be zero
//! ```
//!
//! All multi-byte payload integers are little-endian. The frame grammar
//! (kind byte in parentheses; client frames in the 0x0_ range, server
//! replies in 0x8_, errors at 0xEE):
//!
//! ```text
//! client → server
//!   OPEN_STREAM  (0x01)  —
//!   FEED_CHUNK   (0x02)  stream:u64, data:bytes
//!   POLL_MATCHES (0x03)  stream:u64
//!   FINISH       (0x04)  stream:u64
//!   STATS        (0x05)  —
//!   RELOAD       (0x06)  rules:utf8 (empty = recompile the current rules)
//!   CACHE_GET    (0x07)  key (see below)
//!   CACHE_PUT    (0x08)  key, artifact:bytes (a whole CAPR blob)
//!   CACHE_STATS  (0x09)  —
//!
//! server → client
//!   STREAM_OPENED (0x81) stream:u64, generation:u64
//!   FEED_ACK      (0x82) stream:u64, bytes:u64
//!   MATCHES       (0x83) stream:u64, count:u32, (pos:u64, code:u32)*count
//!   FINISHED      (0x84) stream:u64, report (see [`WireReport`])
//!   STATS_REPLY   (0x85) generation:u64, reloads:u64, live_streams:u64,
//!                        connections:u64, streams_served:u64
//!   RELOAD_OK     (0x86) generation:u64
//!   CACHE_FOUND   (0x87) artifact:bytes
//!   CACHE_MISS    (0x88) —
//!   CACHE_PUT_OK  (0x89) —
//!   CACHE_STATS_REPLY (0x8A) hits:u64, misses:u64, puts:u64, rejected:u64,
//!                        bytes_served:u64, bytes_stored:u64,
//!                        entries:u64, disk_bytes:u64
//!   ERROR         (0xEE) code:u16, message:utf8
//! ```
//!
//! A cache `key` on the wire is the 34-byte canonical encoding of a
//! [`CacheKey`]: fingerprint (16 bytes, little-endian u128), design tag
//! (u8: 0 performance, 1 space), slices (u64), seed (u64), optimized
//! (u8: 0 or 1). The CACHE_* frames let a fleet share compiled artifacts
//! through a cache peer — the client side ships in
//! [`RemoteCache`](crate::cache::remote::RemoteCache), and the server
//! side in [`CacheServer`](crate::serve::cache_server::CacheServer)
//! (`cactl cache-serve`). A scan daemon still refuses them with a typed
//! ERROR (code 9, unsupported), which the remote tier treats as a
//! permanent miss. New kinds are additive: an old peer rejects them with
//! UnknownKind/ERROR rather than misparsing, so PROTO_VERSION stays at 1.
//!
//! The protocol is strict request/reply per frame: every client frame
//! elicits exactly one reply (the matching success frame or an ERROR).
//! ERROR `code` values are [`CaError::code`] — the same table `cactl`
//! uses for process exit codes — so a scripted client branches on failure
//! kind identically whether a scan failed locally or across the socket.
//!
//! Decoding is defensive: version mismatches, unknown kinds, oversized
//! lengths (> [`MAX_FRAME_PAYLOAD`]), non-zero reserved bytes, truncated
//! or trailing payload bytes, and invalid UTF-8 all surface as typed
//! [`ProtoError`]s, never panics — the proptests in
//! `crates/core/tests/proto.rs` hold this over arbitrary byte soup.
//! Encoding enforces the same cap: a frame whose payload would exceed
//! [`MAX_FRAME_PAYLOAD`] (or whose counts overflow their wire width)
//! fails with [`ProtoError::Oversized`] instead of silently truncating,
//! so a malformed frame can never be *emitted* either. Producers of
//! unbounded event lists chunk under
//! [`MAX_EVENTS_PER_MATCHES_FRAME`].

use crate::cache::CacheKey;
use crate::{CaError, Design, MatchEvent};
use ca_automata::{Fingerprint, ReportCode};
use ca_sim::ExecStats;
use std::io::{Read, Write};

/// Version byte every frame header carries. Bumped on any grammar change;
/// a daemon refuses frames from a different version with a typed error.
pub const PROTO_VERSION: u8 = 1;

/// Header bytes preceding every payload.
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame's payload. A peer announcing more is declared
/// corrupt immediately (before any allocation), so a garbage length
/// prefix cannot balloon memory.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Most events a single MATCHES frame can carry without its payload
/// (stream id + count + 12 bytes per event) crossing
/// [`MAX_FRAME_PAYLOAD`]. Producers draining unbounded match queues chunk
/// their replies at this size.
pub const MAX_EVENTS_PER_MATCHES_FRAME: usize = (MAX_FRAME_PAYLOAD - 8 - 4) / 12;

/// Bytes of a [`CacheKey`]'s canonical wire encoding.
const CACHE_KEY_LEN: usize = 16 + 1 + 8 + 8 + 1;

/// Frame-kind bytes (see the module docs for the grammar).
mod kind {
    pub const OPEN_STREAM: u8 = 0x01;
    pub const FEED_CHUNK: u8 = 0x02;
    pub const POLL_MATCHES: u8 = 0x03;
    pub const FINISH: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const RELOAD: u8 = 0x06;
    pub const CACHE_GET: u8 = 0x07;
    pub const CACHE_PUT: u8 = 0x08;
    pub const CACHE_STATS: u8 = 0x09;
    pub const STREAM_OPENED: u8 = 0x81;
    pub const FEED_ACK: u8 = 0x82;
    pub const MATCHES: u8 = 0x83;
    pub const FINISHED: u8 = 0x84;
    pub const STATS_REPLY: u8 = 0x85;
    pub const RELOAD_OK: u8 = 0x86;
    pub const CACHE_FOUND: u8 = 0x87;
    pub const CACHE_MISS: u8 = 0x88;
    pub const CACHE_PUT_OK: u8 = 0x89;
    pub const CACHE_STATS_REPLY: u8 = 0x8A;
    pub const ERROR: u8 = 0xEE;
}

/// A wire-protocol violation. Converted to [`CaError::Protocol`] (code 8)
/// at API boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtoError {
    /// The byte stream ended inside a frame (header or payload).
    Truncated,
    /// A payload larger than [`MAX_FRAME_PAYLOAD`] — announced by a peer's
    /// header on decode, or produced by a frame's own contents on encode
    /// (encoding refuses to emit what decoding would refuse to accept).
    Oversized {
        /// The announced (or would-be) payload length.
        len: u64,
    },
    /// The header's version byte does not match [`PROTO_VERSION`].
    Version {
        /// The version byte received.
        got: u8,
    },
    /// The header's kind byte names no known frame.
    UnknownKind(u8),
    /// A structurally invalid payload (wrong size for its kind, counts
    /// that disagree with the byte count, trailing bytes, bad UTF-8,
    /// non-zero reserved header bytes).
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "byte stream ended mid-frame"),
            ProtoError::Oversized { len } => {
                write!(f, "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD} limit")
            }
            ProtoError::Version { got } => {
                write!(f, "peer speaks protocol version {got}, this build speaks {PROTO_VERSION}")
            }
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for CaError {
    fn from(e: ProtoError) -> CaError {
        CaError::Protocol(e.to_string())
    }
}

/// The per-stream result a FINISHED frame carries: every match of the
/// stream (sorted, deduplicated) plus the full [`ExecStats`] — enough for
/// a client to verify byte-identity against a local serial scan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WireReport {
    /// All matches of the stream, in position order.
    pub events: Vec<MatchEvent>,
    /// The stream's finalized activity counters.
    pub exec: ExecStats,
}

/// Daemon-level counters a STATS_REPLY carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Generation counter of the currently-bound program (bumped by every
    /// successful reload; generation 0 is the program the daemon started
    /// with).
    pub generation: u64,
    /// Successful RELOADs since the daemon started.
    pub reloads: u64,
    /// Streams currently open on the *current* generation's pool.
    pub live_streams: u64,
    /// Connections currently accepted and not yet closed.
    pub connections: u64,
    /// Streams opened over the daemon's lifetime (all generations).
    pub streams_served: u64,
}

/// Cache-peer counters a CACHE_STATS_REPLY carries: the request-serving
/// half (`cache.serve.*` telemetry) plus the peer's disk inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheServerStats {
    /// CACHE_GETs answered with an artifact.
    pub hits: u64,
    /// CACHE_GETs answered with a miss (including quarantined artifacts).
    pub misses: u64,
    /// CACHE_PUTs validated and persisted.
    pub puts: u64,
    /// CACHE_PUTs refused (artifact failed validation).
    pub rejected: u64,
    /// Artifact bytes shipped in CACHE_FOUND replies.
    pub bytes_served: u64,
    /// Artifact bytes accepted from CACHE_PUTs.
    pub bytes_stored: u64,
    /// Artifacts currently on the peer's disk.
    pub entries: u64,
    /// Bytes those artifacts occupy.
    pub disk_bytes: u64,
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Frame {
    /// Open a new logical stream on the daemon's current generation.
    OpenStream,
    /// Feed the next chunk of stream `stream`.
    FeedChunk {
        /// Daemon-assigned stream id (from [`Frame::StreamOpened`]).
        stream: u64,
        /// The chunk bytes.
        data: Vec<u8>,
    },
    /// Drain matches reported since the last poll of `stream`.
    PollMatches {
        /// Stream id.
        stream: u64,
    },
    /// Close `stream` and request its final report.
    Finish {
        /// Stream id.
        stream: u64,
    },
    /// Request daemon counters.
    Stats,
    /// Atomically swap in a newly compiled program. `rules` is the new
    /// rule text (regex lines or ANML); empty means "recompile the rules
    /// the daemon currently serves" — a generation bump to an identical
    /// program, useful for drills and drain tests.
    Reload {
        /// Replacement rule text, or empty for same-rules reload.
        rules: String,
    },
    /// Ask a cache peer for the artifact compiled under `key`.
    CacheGet {
        /// The compilation's canonical cache key.
        key: CacheKey,
    },
    /// Offer a cache peer the artifact compiled under `key`.
    CachePut {
        /// The compilation's canonical cache key.
        key: CacheKey,
        /// The complete `CAPR` artifact bytes (self-validating: magic,
        /// version, and checksum travel inside).
        artifact: Vec<u8>,
    },
    /// Request a cache peer's counters.
    CacheStats,
    /// Reply to [`Frame::OpenStream`].
    StreamOpened {
        /// Daemon-assigned stream id, unique per connection.
        stream: u64,
        /// Generation of the program the stream is bound to.
        generation: u64,
    },
    /// Reply to [`Frame::FeedChunk`]: the chunk is queued (possibly after
    /// a backpressure stall).
    FeedAck {
        /// Stream id.
        stream: u64,
        /// Bytes accepted (always the full chunk).
        bytes: u64,
    },
    /// Reply to [`Frame::PollMatches`].
    Matches {
        /// Stream id.
        stream: u64,
        /// Events drained by this poll, in feed order.
        events: Vec<MatchEvent>,
    },
    /// Reply to [`Frame::Finish`].
    Finished {
        /// Stream id.
        stream: u64,
        /// The stream's final report.
        report: WireReport,
    },
    /// Reply to [`Frame::Stats`].
    StatsReply(ServerStats),
    /// Reply to a successful [`Frame::Reload`].
    ReloadOk {
        /// The new generation counter.
        generation: u64,
    },
    /// Reply to [`Frame::CacheGet`]: the peer has the artifact.
    CacheFound {
        /// The stored `CAPR` artifact bytes. Receivers validate fully
        /// (checksum and decode) before trusting them.
        artifact: Vec<u8>,
    },
    /// Reply to [`Frame::CacheGet`]: the peer has nothing stored.
    CacheMiss,
    /// Reply to [`Frame::CachePut`]: the artifact was accepted.
    CachePutOk,
    /// Reply to [`Frame::CacheStats`].
    CacheStatsReply(CacheServerStats),
    /// Typed failure reply; `code` is the daemon-side [`CaError::code`].
    Error {
        /// [`CaError::code`] value of the failure.
        code: u16,
        /// Human-readable message.
        message: String,
    },
}

/// Maps a daemon-side error to its wire representation. Variants whose
/// payload is a plain string send it bare (so [`error_from_wire`] is an
/// exact inverse for them); structured payloads send their rendered form.
pub fn error_to_wire(e: &CaError) -> Frame {
    let message = match e {
        CaError::Config(m)
        | CaError::Io(m)
        | CaError::Internal(m)
        | CaError::Protocol(m)
        | CaError::Unsupported(m) => m.clone(),
        CaError::Remote { message, .. } => message.clone(),
        other => other.to_string(),
    };
    Frame::Error { code: u16::from(e.code()), message }
}

/// Reconstructs a client-side [`CaError`] from an ERROR frame. Variants
/// whose payload is a plain string come back as themselves; the rest
/// (automata / compiler / artifact errors carry structured payloads that
/// do not cross the wire) come back as [`CaError::Remote`] with the
/// original code preserved.
pub fn error_from_wire(code: u16, message: String) -> CaError {
    match code {
        2 => CaError::Config(message),
        3 => CaError::Io(message),
        7 => CaError::Internal(message),
        8 => CaError::Protocol(message),
        9 => CaError::Unsupported(message),
        other => CaError::Remote { code: other.min(255) as u8, message },
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a frame payload with typed underrun errors.
struct Take<'a> {
    rest: &'a [u8],
}

impl<'a> Take<'a> {
    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ProtoError> {
        if self.rest.len() < n {
            return Err(ProtoError::Malformed(what));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.bytes(2, what)?.try_into().expect("length checked")))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().expect("length checked")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().expect("length checked")))
    }

    fn utf8(&mut self, what: &'static str) -> Result<String, ProtoError> {
        let bytes = std::mem::take(&mut self.rest);
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::Malformed(what))
    }

    fn cache_key(&mut self) -> Result<CacheKey, ProtoError> {
        let fp =
            u128::from_le_bytes(self.bytes(16, "cache key fingerprint")?.try_into().expect("16"));
        let design = match self.bytes(1, "cache key design")?[0] {
            0 => Design::Performance,
            1 => Design::Space,
            _ => return Err(ProtoError::Malformed("cache key design tag")),
        };
        let slices = self.u64("cache key slices")?;
        let slices = usize::try_from(slices)
            .map_err(|_| ProtoError::Malformed("cache key slices exceeds usize"))?;
        let seed = self.u64("cache key seed")?;
        let optimized = match self.bytes(1, "cache key optimized")?[0] {
            0 => false,
            1 => true,
            _ => return Err(ProtoError::Malformed("cache key optimized flag")),
        };
        Ok(CacheKey { fingerprint: Fingerprint(fp), design, slices, seed, optimized })
    }

    fn events(&mut self) -> Result<Vec<MatchEvent>, ProtoError> {
        let count = self.u32("event count")? as usize;
        // 12 bytes per event; reject counts the payload cannot hold
        // before allocating.
        if self.rest.len() / 12 < count {
            return Err(ProtoError::Malformed("event count exceeds payload"));
        }
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let pos = self.u64("event position")?;
            let code = self.u32("event code")?;
            events.push(MatchEvent::new(pos, ReportCode(code)));
        }
        Ok(events)
    }

    fn done(self, what: &'static str) -> Result<(), ProtoError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(what))
        }
    }
}

fn put_cache_key(buf: &mut Vec<u8>, key: &CacheKey) {
    let start = buf.len();
    buf.extend_from_slice(&key.fingerprint.0.to_le_bytes());
    buf.push(match key.design {
        Design::Performance => 0,
        Design::Space => 1,
    });
    put_u64(buf, key.slices as u64);
    put_u64(buf, key.seed);
    buf.push(key.optimized as u8);
    debug_assert_eq!(buf.len() - start, CACHE_KEY_LEN);
}

/// Checked count prefix: a length that cannot be represented as u32 means
/// the frame could never fit under [`MAX_FRAME_PAYLOAD`] anyway, so it is
/// reported as [`ProtoError::Oversized`] instead of silently truncating.
fn put_count(buf: &mut Vec<u8>, len: usize, item_bytes: u64) -> Result<(), ProtoError> {
    let count = u32::try_from(len)
        .map_err(|_| ProtoError::Oversized { len: (len as u64).saturating_mul(item_bytes) })?;
    put_u32(buf, count);
    Ok(())
}

fn put_events(buf: &mut Vec<u8>, events: &[MatchEvent]) -> Result<(), ProtoError> {
    put_count(buf, events.len(), 12)?;
    for ev in events {
        put_u64(buf, ev.pos);
        put_u32(buf, ev.code.0);
    }
    Ok(())
}

fn put_report(buf: &mut Vec<u8>, report: &WireReport) -> Result<(), ProtoError> {
    put_events(buf, &report.events)?;
    let e = &report.exec;
    for v in [
        e.symbols,
        e.cycles,
        e.active_partition_cycles,
        e.matched_total,
        e.g1_signals,
        e.g4_signals,
        e.reports,
        e.output_interrupts,
        e.fifo_refills,
    ] {
        put_u64(buf, v);
    }
    put_count(buf, e.per_partition_active.len(), 8)?;
    for v in &e.per_partition_active {
        put_u64(buf, *v);
    }
    Ok(())
}

fn take_report(t: &mut Take<'_>) -> Result<WireReport, ProtoError> {
    let events = t.events()?;
    let mut exec = ExecStats {
        symbols: t.u64("exec symbols")?,
        cycles: t.u64("exec cycles")?,
        active_partition_cycles: t.u64("exec active partition cycles")?,
        matched_total: t.u64("exec matched total")?,
        g1_signals: t.u64("exec g1 signals")?,
        g4_signals: t.u64("exec g4 signals")?,
        reports: t.u64("exec reports")?,
        output_interrupts: t.u64("exec output interrupts")?,
        fifo_refills: t.u64("exec fifo refills")?,
        per_partition_active: Vec::new(),
    };
    let partitions = t.u32("partition count")? as usize;
    if t.rest.len() / 8 < partitions {
        return Err(ProtoError::Malformed("partition count exceeds payload"));
    }
    exec.per_partition_active.reserve(partitions);
    for _ in 0..partitions {
        exec.per_partition_active.push(t.u64("partition activity")?);
    }
    Ok(WireReport { events, exec })
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::OpenStream => kind::OPEN_STREAM,
            Frame::FeedChunk { .. } => kind::FEED_CHUNK,
            Frame::PollMatches { .. } => kind::POLL_MATCHES,
            Frame::Finish { .. } => kind::FINISH,
            Frame::Stats => kind::STATS,
            Frame::Reload { .. } => kind::RELOAD,
            Frame::CacheGet { .. } => kind::CACHE_GET,
            Frame::CachePut { .. } => kind::CACHE_PUT,
            Frame::CacheStats => kind::CACHE_STATS,
            Frame::StreamOpened { .. } => kind::STREAM_OPENED,
            Frame::FeedAck { .. } => kind::FEED_ACK,
            Frame::Matches { .. } => kind::MATCHES,
            Frame::Finished { .. } => kind::FINISHED,
            Frame::StatsReply(_) => kind::STATS_REPLY,
            Frame::ReloadOk { .. } => kind::RELOAD_OK,
            Frame::CacheFound { .. } => kind::CACHE_FOUND,
            Frame::CacheMiss => kind::CACHE_MISS,
            Frame::CachePutOk => kind::CACHE_PUT_OK,
            Frame::CacheStatsReply(_) => kind::CACHE_STATS_REPLY,
            Frame::Error { .. } => kind::ERROR,
        }
    }

    /// Appends the complete encoded frame (header + payload) to `buf`.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversized`] when the payload would exceed
    /// [`MAX_FRAME_PAYLOAD`] or a count would overflow its wire width —
    /// the cap a decoder enforces is enforced here too, so a malformed
    /// frame is never emitted. On error `buf` is restored to its original
    /// length.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), ProtoError> {
        let header_at = buf.len();
        put_u32(buf, 0); // payload length, patched below
        buf.push(PROTO_VERSION);
        buf.push(self.kind());
        buf.extend_from_slice(&[0u8, 0u8]); // reserved
        let payload_at = buf.len();
        let result = (|| {
            match self {
                Frame::OpenStream
                | Frame::Stats
                | Frame::CacheMiss
                | Frame::CachePutOk
                | Frame::CacheStats => {}
                Frame::FeedChunk { stream, data } => {
                    put_u64(buf, *stream);
                    buf.extend_from_slice(data);
                }
                Frame::PollMatches { stream } | Frame::Finish { stream } => put_u64(buf, *stream),
                Frame::Reload { rules } => buf.extend_from_slice(rules.as_bytes()),
                Frame::CacheGet { key } => put_cache_key(buf, key),
                Frame::CachePut { key, artifact } => {
                    put_cache_key(buf, key);
                    buf.extend_from_slice(artifact);
                }
                Frame::StreamOpened { stream, generation } => {
                    put_u64(buf, *stream);
                    put_u64(buf, *generation);
                }
                Frame::FeedAck { stream, bytes } => {
                    put_u64(buf, *stream);
                    put_u64(buf, *bytes);
                }
                Frame::Matches { stream, events } => {
                    put_u64(buf, *stream);
                    put_events(buf, events)?;
                }
                Frame::Finished { stream, report } => {
                    put_u64(buf, *stream);
                    put_report(buf, report)?;
                }
                Frame::StatsReply(s) => {
                    for v in
                        [s.generation, s.reloads, s.live_streams, s.connections, s.streams_served]
                    {
                        put_u64(buf, v);
                    }
                }
                Frame::ReloadOk { generation } => put_u64(buf, *generation),
                Frame::CacheFound { artifact } => buf.extend_from_slice(artifact),
                Frame::CacheStatsReply(s) => {
                    for v in [
                        s.hits,
                        s.misses,
                        s.puts,
                        s.rejected,
                        s.bytes_served,
                        s.bytes_stored,
                        s.entries,
                        s.disk_bytes,
                    ] {
                        put_u64(buf, v);
                    }
                }
                Frame::Error { code, message } => {
                    buf.extend_from_slice(&code.to_le_bytes());
                    buf.extend_from_slice(message.as_bytes());
                }
            }
            let payload_len = buf.len() - payload_at;
            if payload_len > MAX_FRAME_PAYLOAD {
                return Err(ProtoError::Oversized { len: payload_len as u64 });
            }
            buf[header_at..header_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
            Ok(())
        })();
        if result.is_err() {
            buf.truncate(header_at);
        }
        result
    }

    /// Encodes the frame into a fresh buffer.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Oversized`] — see [`Frame::encode_into`].
    pub fn encode(&self) -> Result<Vec<u8>, ProtoError> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Decodes one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only a prefix of a frame (read
    /// more bytes and retry), or `Ok(Some((frame, consumed)))` on success.
    ///
    /// # Errors
    ///
    /// Typed [`ProtoError`]s for version mismatches, oversized lengths,
    /// unknown kinds, and structurally invalid payloads. Errors are
    /// authoritative the moment the header is complete — a garbage header
    /// is rejected without waiting for its announced payload.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtoError> {
        if buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let payload_len =
            u32::from_le_bytes(buf[0..4].try_into().expect("length checked")) as usize;
        let version = buf[4];
        let kind_byte = buf[5];
        if version != PROTO_VERSION {
            return Err(ProtoError::Version { got: version });
        }
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(ProtoError::Oversized { len: payload_len as u64 });
        }
        if buf[6] != 0 || buf[7] != 0 {
            return Err(ProtoError::Malformed("reserved header bytes must be zero"));
        }
        if buf.len() < HEADER_LEN + payload_len {
            return Ok(None);
        }
        let payload = &buf[HEADER_LEN..HEADER_LEN + payload_len];
        let frame = Frame::decode_payload(kind_byte, payload)?;
        Ok(Some((frame, HEADER_LEN + payload_len)))
    }

    fn decode_payload(kind_byte: u8, payload: &[u8]) -> Result<Frame, ProtoError> {
        let mut t = Take { rest: payload };
        let frame = match kind_byte {
            kind::OPEN_STREAM => Frame::OpenStream,
            kind::FEED_CHUNK => Frame::FeedChunk {
                stream: t.u64("feed stream id")?,
                data: std::mem::take(&mut t.rest).to_vec(),
            },
            kind::POLL_MATCHES => Frame::PollMatches { stream: t.u64("poll stream id")? },
            kind::FINISH => Frame::Finish { stream: t.u64("finish stream id")? },
            kind::STATS => Frame::Stats,
            kind::RELOAD => Frame::Reload { rules: t.utf8("reload rules are not valid UTF-8")? },
            kind::CACHE_GET => Frame::CacheGet { key: t.cache_key()? },
            kind::CACHE_PUT => Frame::CachePut {
                key: t.cache_key()?,
                artifact: std::mem::take(&mut t.rest).to_vec(),
            },
            kind::CACHE_STATS => Frame::CacheStats,
            kind::STREAM_OPENED => Frame::StreamOpened {
                stream: t.u64("opened stream id")?,
                generation: t.u64("opened generation")?,
            },
            kind::FEED_ACK => {
                Frame::FeedAck { stream: t.u64("ack stream id")?, bytes: t.u64("ack bytes")? }
            }
            kind::MATCHES => {
                Frame::Matches { stream: t.u64("matches stream id")?, events: t.events()? }
            }
            kind::FINISHED => {
                let stream = t.u64("finished stream id")?;
                let report = take_report(&mut t)?;
                Frame::Finished { stream, report }
            }
            kind::STATS_REPLY => Frame::StatsReply(ServerStats {
                generation: t.u64("stats generation")?,
                reloads: t.u64("stats reloads")?,
                live_streams: t.u64("stats live streams")?,
                connections: t.u64("stats connections")?,
                streams_served: t.u64("stats streams served")?,
            }),
            kind::RELOAD_OK => Frame::ReloadOk { generation: t.u64("reload generation")? },
            kind::CACHE_FOUND => {
                Frame::CacheFound { artifact: std::mem::take(&mut t.rest).to_vec() }
            }
            kind::CACHE_MISS => Frame::CacheMiss,
            kind::CACHE_PUT_OK => Frame::CachePutOk,
            kind::CACHE_STATS_REPLY => Frame::CacheStatsReply(CacheServerStats {
                hits: t.u64("cache stats hits")?,
                misses: t.u64("cache stats misses")?,
                puts: t.u64("cache stats puts")?,
                rejected: t.u64("cache stats rejected")?,
                bytes_served: t.u64("cache stats bytes served")?,
                bytes_stored: t.u64("cache stats bytes stored")?,
                entries: t.u64("cache stats entries")?,
                disk_bytes: t.u64("cache stats disk bytes")?,
            }),
            kind::ERROR => {
                let code = t.u16("error code")?;
                let message = t.utf8("error message is not valid UTF-8")?;
                Frame::Error { code, message }
            }
            other => return Err(ProtoError::UnknownKind(other)),
        };
        t.done("trailing bytes in frame payload")?;
        Ok(frame)
    }
}

/// Writes one frame to `w` (unbuffered; wrap `w` in a `BufWriter` and
/// flush at request boundaries).
///
/// # Errors
///
/// [`CaError::Protocol`] when the frame exceeds the payload cap (nothing
/// is written); [`CaError::Io`] on transport failure.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), CaError> {
    let bytes = frame.encode()?;
    w.write_all(&bytes).map_err(|e| CaError::Io(format!("writing frame: {e}")))
}

/// Reads one frame from `r`, blocking until it is complete.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary.
///
/// # Errors
///
/// [`CaError::Protocol`] when the stream ends mid-frame
/// ([`ProtoError::Truncated`]) or the frame is invalid;
/// [`CaError::Io`] on transport failure.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, CaError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header, true)? {
        return Ok(None);
    }
    let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("length checked")) as usize;
    // Validate the header before allocating or reading the payload, so an
    // oversized or alien frame is refused without consuming its bytes.
    if header[4] != PROTO_VERSION {
        return Err(ProtoError::Version { got: header[4] }.into());
    }
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Oversized { len: payload_len as u64 }.into());
    }
    if header[6] != 0 || header[7] != 0 {
        return Err(ProtoError::Malformed("reserved header bytes must be zero").into());
    }
    let mut payload = vec![0u8; payload_len];
    if !read_full(r, &mut payload, false)? {
        return Err(ProtoError::Truncated.into());
    }
    Ok(Some(Frame::decode_payload(header[5], &payload)?))
}

/// Fills `buf` from `r`. Returns `Ok(false)` on EOF before the first byte
/// when `eof_ok` (clean close), errors [`ProtoError::Truncated`] on EOF
/// anywhere else.
fn read_full(r: &mut impl Read, buf: &mut [u8], eof_ok: bool) -> Result<bool, CaError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok {
                    return Ok(false);
                }
                return Err(ProtoError::Truncated.into());
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(CaError::Io(format!("reading frame: {e}"))),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode().expect("in-bounds frame encodes");
        let (decoded, consumed) = Frame::decode(&bytes).expect("valid frame").expect("complete");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
        // and through the blocking reader
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF after the frame");
    }

    fn sample_key() -> CacheKey {
        CacheKey {
            fingerprint: Fingerprint(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff),
            design: Design::Space,
            slices: 16,
            seed: 0xdead_beef,
            optimized: true,
        }
    }

    #[test]
    fn all_frames_round_trip() {
        round_trip(Frame::OpenStream);
        round_trip(Frame::FeedChunk { stream: 7, data: b"abc\x00\xff".to_vec() });
        round_trip(Frame::FeedChunk { stream: u64::MAX, data: Vec::new() });
        round_trip(Frame::PollMatches { stream: 3 });
        round_trip(Frame::Finish { stream: 0 });
        round_trip(Frame::Stats);
        round_trip(Frame::Reload { rules: String::new() });
        round_trip(Frame::Reload { rules: "abc\nd[ef]g\n".into() });
        round_trip(Frame::StreamOpened { stream: 1, generation: 2 });
        round_trip(Frame::FeedAck { stream: 1, bytes: 4096 });
        round_trip(Frame::Matches {
            stream: 9,
            events: vec![
                MatchEvent::new(0, ReportCode(0)),
                MatchEvent::new(u64::MAX, ReportCode(u32::MAX)),
            ],
        });
        round_trip(Frame::Finished {
            stream: 2,
            report: WireReport {
                events: vec![MatchEvent::new(5, ReportCode(1))],
                exec: ExecStats {
                    symbols: 10,
                    cycles: 12,
                    per_partition_active: vec![3, 0, 7],
                    ..ExecStats::default()
                },
            },
        });
        round_trip(Frame::StatsReply(ServerStats {
            generation: 3,
            reloads: 3,
            live_streams: 64,
            connections: 8,
            streams_served: 4096,
        }));
        round_trip(Frame::ReloadOk { generation: 17 });
        round_trip(Frame::CacheGet { key: sample_key() });
        round_trip(Frame::CachePut { key: sample_key(), artifact: b"CAPR\x01\x00junk".to_vec() });
        round_trip(Frame::CacheFound { artifact: vec![0u8; 1024] });
        round_trip(Frame::CacheFound { artifact: Vec::new() });
        round_trip(Frame::CacheMiss);
        round_trip(Frame::CachePutOk);
        round_trip(Frame::CacheStats);
        round_trip(Frame::CacheStatsReply(CacheServerStats {
            hits: 1,
            misses: 2,
            puts: 3,
            rejected: 4,
            bytes_served: u64::MAX,
            bytes_stored: 6,
            entries: 7,
            disk_bytes: 8,
        }));
        round_trip(Frame::Error { code: 7, message: "worker panicked".into() });
    }

    #[test]
    fn cache_key_wire_encoding_is_exact() {
        let bytes = Frame::CacheGet { key: sample_key() }.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + CACHE_KEY_LEN);
        // a mangled design tag is a typed malformed error, not a panic
        let mut bad = bytes.clone();
        bad[HEADER_LEN + 16] = 9;
        assert!(matches!(Frame::decode(&bad).unwrap_err(), ProtoError::Malformed(_)));
    }

    #[test]
    fn oversized_frames_refuse_to_encode() {
        // a CACHE_FOUND artifact one byte over the cap must not be emitted
        let frame = Frame::CacheFound { artifact: vec![0u8; MAX_FRAME_PAYLOAD + 1] };
        assert_eq!(
            frame.encode().unwrap_err(),
            ProtoError::Oversized { len: MAX_FRAME_PAYLOAD as u64 + 1 }
        );
        // encode_into leaves the buffer untouched on failure
        let mut buf = b"prefix".to_vec();
        assert!(frame.encode_into(&mut buf).is_err());
        assert_eq!(buf, b"prefix");
        // and write_frame surfaces it as a protocol error, writing nothing
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &frame).unwrap_err();
        assert!(matches!(err, CaError::Protocol(_)), "{err}");
        assert!(sink.is_empty());
        // exactly at the cap is fine
        let frame = Frame::CacheFound { artifact: vec![0u8; MAX_FRAME_PAYLOAD] };
        let bytes = frame.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + MAX_FRAME_PAYLOAD);
        assert!(Frame::decode(&bytes).unwrap().is_some(), "cap-sized frame decodes");
    }

    #[test]
    fn max_events_per_matches_frame_is_tight() {
        // a MATCHES frame at the event cap encodes and stays under the
        // payload cap; one more event would push it over
        let payload = 8 + 4 + MAX_EVENTS_PER_MATCHES_FRAME * 12;
        assert!(payload <= MAX_FRAME_PAYLOAD);
        assert!(payload + 12 > MAX_FRAME_PAYLOAD);
    }

    #[test]
    fn incomplete_prefixes_ask_for_more() {
        let bytes = Frame::FeedChunk { stream: 1, data: b"hello".to_vec() }.encode().unwrap();
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "prefix of {cut} bytes");
        }
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let bytes = Frame::FeedChunk { stream: 1, data: b"hello".to_vec() }.encode().unwrap();
        for cut in 1..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[..cut]);
            let err = read_frame(&mut cursor).unwrap_err();
            assert!(matches!(err, CaError::Protocol(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = Frame::Stats.encode().unwrap();
        bytes[4] = PROTO_VERSION + 1;
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            ProtoError::Version { got: PROTO_VERSION + 1 }
        );
    }

    #[test]
    fn oversized_length_is_rejected_from_header_alone() {
        let mut bytes = Frame::Stats.encode().unwrap();
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        // only the 8 header bytes exist; the error must not wait for the
        // announced 4 GiB payload
        assert_eq!(
            Frame::decode(&bytes[..HEADER_LEN]).unwrap_err(),
            ProtoError::Oversized { len: u64::from(u32::MAX) }
        );
    }

    #[test]
    fn unknown_kind_and_reserved_bytes_are_rejected() {
        let mut bytes = Frame::Stats.encode().unwrap();
        bytes[5] = 0x42;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), ProtoError::UnknownKind(0x42));
        let mut bytes = Frame::Stats.encode().unwrap();
        bytes[6] = 1;
        assert!(matches!(Frame::decode(&bytes).unwrap_err(), ProtoError::Malformed(_)));
    }

    #[test]
    fn event_count_lying_about_payload_is_rejected() {
        // MATCHES frame claiming 1000 events but carrying none.
        let mut buf = Vec::new();
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u32(&mut payload, 1000);
        put_u32(&mut buf, payload.len() as u32);
        buf.push(PROTO_VERSION);
        buf.push(kind::MATCHES);
        buf.extend_from_slice(&[0, 0]);
        buf.extend_from_slice(&payload);
        assert!(matches!(Frame::decode(&buf).unwrap_err(), ProtoError::Malformed(_)));
    }

    #[test]
    fn error_codes_round_trip_the_shared_table() {
        for err in [
            CaError::Config("bad".into()),
            CaError::Io("gone".into()),
            CaError::Internal("panic".into()),
            CaError::Protocol("junk".into()),
            CaError::Unsupported("not a cache peer".into()),
        ] {
            let Frame::Error { code, message } = error_to_wire(&err) else {
                panic!("error_to_wire must produce an Error frame");
            };
            let back = error_from_wire(code, message);
            assert_eq!(back, err);
            assert_eq!(back.code(), err.code());
        }
        // structured payloads come back as Remote with the code preserved
        let err = CacheCompileProbe::err();
        let Frame::Error { code, message } = error_to_wire(&err) else { unreachable!() };
        let back = error_from_wire(code, message);
        assert!(matches!(back, CaError::Remote { code: 5, .. }));
        assert_eq!(back.code(), err.code());
    }

    /// Helper producing a compiler error without running the compiler.
    struct CacheCompileProbe;
    impl CacheCompileProbe {
        fn err() -> CaError {
            CaError::Compile(crate::CompileError::CapacityExceeded { needed: 2, available: 1 })
        }
    }
}
