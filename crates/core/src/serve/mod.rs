//! Multi-stream scan service: many logical streams over few fabrics.
//!
//! Everything built below the serving layer scans *one* stream per call —
//! [`Program::run`], [`Scanner`](crate::Scanner) sessions, the sharded
//! parallel driver. A service front-end has the opposite shape: thousands
//! of concurrent logical streams, each trickling in chunks, multiplexed
//! over a machine with a handful of cores. [`ScanPool`] closes that gap:
//!
//! - **M streams over N workers.** Clients open any number of
//!   [`StreamHandle`]s; a fixed set of worker threads services them.
//! - **A bounded pool of recycled fabrics.** At most
//!   [`PoolOptions::max_fabrics`] [`Fabric`] instances ever exist; between
//!   batches a stream's state lives in its compact [`Snapshot`] (paper
//!   §2.9), so a fabric serves one stream's batch, is
//!   [`reset`](Fabric::reset), and moves on to any other stream.
//! - **Bounded queues with backpressure.** [`StreamHandle::feed`] blocks
//!   once [`PoolOptions::queue_bytes`] are buffered, so a fast producer
//!   cannot balloon memory.
//! - **Deficit-round-robin scheduling.** Ready streams are serviced in a
//!   ring; each service grants [`PoolOptions::quantum`] bytes of credit,
//!   so a hot stream with a deep queue cannot starve the others.
//! - **Typed errors, no cross-thread panics.** A worker panic is caught,
//!   converted to [`CaError::Internal`] on the stream that hit it, and the
//!   (possibly corrupt) fabric is discarded rather than recycled; every
//!   other stream keeps running.
//!
//! Per-stream results are exact: the matches and [`ExecStats`] a stream
//! observes are bit-identical to running its chunks through a dedicated
//! [`Scanner`](crate::Scanner) session, whatever the interleaving —
//! activity counters are chunking-invariant and the finishing accounting
//! is shared with `Scanner::finish`.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cache_automaton::{CacheAutomaton, PoolOptions, ScanPool};
//!
//! let program = CacheAutomaton::new().compile_patterns(&["spain"])?;
//! let pool = ScanPool::new(&program, PoolOptions { workers: 2, ..PoolOptions::default() })?;
//! let mut a = pool.open_stream()?;
//! let mut b = pool.open_stream()?;
//! a.feed(b"the rain in sp")?;
//! b.feed(b"no match here")?;
//! a.feed(b"ain")?;
//! assert_eq!(a.finish()?.matches.len(), 1);
//! assert_eq!(b.finish()?.matches.len(), 0);
//! pool.shutdown()?;
//! # Ok(())
//! # }
//! ```

pub mod cache_server;
pub mod daemon;
pub(crate) mod net;
pub mod proto;

use crate::scanner::finalize_session_stats;
use crate::{join_panic_to_internal, CaError, MatchEvent, Program, RunReport, Session};
use ca_sim::fabric::{ExecStats, RunOptions};
use ca_sim::{Fabric, Snapshot};
use ca_telemetry::Telemetry;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Configuration of a [`ScanPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolOptions {
    /// Worker threads servicing stream batches. Must be at least 1.
    pub workers: usize,
    /// Upper bound on live [`Fabric`] instances; `0` means "same as
    /// `workers`" (more than `workers` can never run simultaneously).
    pub max_fabrics: usize,
    /// Per-stream buffered-byte bound; [`StreamHandle::feed`] blocks while
    /// a stream already holds this much unprocessed input.
    pub queue_bytes: usize,
    /// Deficit-round-robin quantum: byte credit a stream earns per
    /// service. Small values interleave finely; large values amortize
    /// scheduling overhead.
    pub quantum: usize,
}

impl Default for PoolOptions {
    fn default() -> PoolOptions {
        PoolOptions { workers: 1, max_fabrics: 0, queue_bytes: 1 << 20, quantum: 64 << 10 }
    }
}

/// Lifecycle of the pool as a whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Accepting streams and input.
    Running,
    /// No new streams or input; queued work is still being processed.
    Draining,
    /// Queued work was discarded; unfinished streams report an error.
    Aborted,
}

/// Per-stream mutable state, owned by the pool's mutex.
#[derive(Debug)]
struct StreamState {
    /// Unprocessed input chunks, oldest first.
    queue: VecDeque<Vec<u8>>,
    /// Total bytes across `queue` (the backpressure metric).
    queued_bytes: usize,
    /// Deficit-round-robin byte credit carried between services.
    deficit: usize,
    /// Suspend image carrying fabric state between batches (§2.9).
    snapshot: Option<Snapshot>,
    /// All match events so far, in feed order (absolute positions).
    events: Vec<MatchEvent>,
    /// How many of `events` have been handed out incrementally.
    delivered: usize,
    /// Accumulated activity counters (cycles decided at finish).
    stats: ExecStats,
    /// No further `feed` calls will arrive.
    closed: bool,
    /// A worker is currently running a batch of this stream.
    running: bool,
    /// The stream sits in the ready ring.
    scheduled: bool,
    /// First failure that hit this stream (reported at the next call).
    error: Option<CaError>,
}

impl StreamState {
    fn new() -> StreamState {
        StreamState {
            queue: VecDeque::new(),
            queued_bytes: 0,
            deficit: 0,
            snapshot: None,
            events: Vec::new(),
            delivered: 0,
            stats: ExecStats::default(),
            closed: false,
            running: false,
            scheduled: false,
            error: None,
        }
    }
}

/// Pool state behind one mutex: streams, the DRR ring, the fabric pool.
#[derive(Debug)]
struct Inner {
    streams: BTreeMap<u64, StreamState>,
    /// Stream ids with queued work, in service order (the DRR ring).
    ready: VecDeque<u64>,
    /// Recycled fabric instances awaiting a batch.
    idle_fabrics: Vec<Fabric>,
    /// Fabrics in existence (idle + in use); bounded by `max_fabrics`.
    fabrics_created: usize,
    next_id: u64,
    mode: Mode,
}

struct Shared {
    program: Program,
    telemetry: Telemetry,
    max_fabrics: usize,
    queue_bytes: usize,
    quantum: usize,
    inner: Mutex<Inner>,
    /// Wakes workers: ready work, a freed fabric, or a mode change.
    work_cv: Condvar,
    /// Wakes feeders blocked on a full stream queue.
    space_cv: Condvar,
    /// Wakes `finish` waiters when a stream's pending work completes.
    done_cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A worker panicking while holding the lock is already converted
        // to a typed stream error before the lock is released, so poisoning
        // carries no extra information — recover the guard.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn emit_pool_gauges(&self, inner: &Inner) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.telemetry.gauge("serve.live_streams", 0, inner.streams.len() as f64);
        let in_use = inner.fabrics_created - inner.idle_fabrics.len();
        self.telemetry.gauge("serve.pool_occupancy", 0, in_use as f64);
    }
}

/// A multi-stream scan service over one compiled [`Program`].
///
/// See the [module documentation](self) for the full contract. Dropping
/// the pool drains queued work and joins the workers; use
/// [`shutdown`](ScanPool::shutdown) to observe errors from that path or
/// [`abort`](ScanPool::abort) to discard queued work instead.
pub struct ScanPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ScanPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.shared.lock();
        f.debug_struct("ScanPool")
            .field("workers", &self.workers.len())
            .field("live_streams", &inner.streams.len())
            .field("fabrics_created", &inner.fabrics_created)
            .field("mode", &inner.mode)
            .finish()
    }
}

impl ScanPool {
    /// Starts a pool of `options.workers` threads serving streams of
    /// `program`.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] when `workers` is zero, or a bound
    /// (`queue_bytes`, `quantum`) is zero.
    pub fn new(program: &Program, options: PoolOptions) -> Result<ScanPool, CaError> {
        if options.workers == 0 {
            return Err(CaError::Config("a scan pool needs at least one worker".into()));
        }
        if options.queue_bytes == 0 || options.quantum == 0 {
            return Err(CaError::Config(
                "scan pool queue_bytes and quantum must be non-zero".into(),
            ));
        }
        let max_fabrics =
            if options.max_fabrics == 0 { options.workers } else { options.max_fabrics };
        let shared = Arc::new(Shared {
            program: program.clone(),
            telemetry: program.telemetry(),
            max_fabrics,
            queue_bytes: options.queue_bytes,
            quantum: options.quantum,
            inner: Mutex::new(Inner {
                streams: BTreeMap::new(),
                ready: VecDeque::new(),
                idle_fabrics: Vec::new(),
                fabrics_created: 0,
                next_id: 0,
                mode: Mode::Running,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..options.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(ScanPool { shared, workers })
    }

    /// Opens a new logical stream and returns its handle.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] once the pool is shutting down.
    pub fn open_stream(&self) -> Result<StreamHandle, CaError> {
        let mut inner = self.shared.lock();
        if inner.mode != Mode::Running {
            return Err(CaError::Config("scan pool is shutting down".into()));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.streams.insert(id, StreamState::new());
        self.shared.emit_pool_gauges(&inner);
        Ok(StreamHandle {
            shared: Arc::clone(&self.shared),
            id,
            finished: false,
            polled: Vec::new(),
        })
    }

    /// Streams currently open (fed or not).
    pub fn live_streams(&self) -> usize {
        self.shared.lock().streams.len()
    }

    /// Stops accepting input, processes everything already queued, and
    /// joins the workers. Open streams can still be
    /// [`finish`](StreamHandle::finish)ed afterwards — their queued work
    /// has been fully processed.
    ///
    /// # Errors
    ///
    /// [`CaError::Internal`] if a worker thread died outside the per-batch
    /// containment (should be unreachable; per-batch panics surface on the
    /// stream that hit them, not here).
    pub fn shutdown(mut self) -> Result<(), CaError> {
        {
            let mut inner = self.shared.lock();
            if inner.mode == Mode::Running {
                inner.mode = Mode::Draining;
            }
        }
        self.notify_all();
        let mut first_error = None;
        for handle in std::mem::take(&mut self.workers) {
            if let Err(payload) = handle.join() {
                first_error
                    .get_or_insert_with(|| join_panic_to_internal("scan pool worker", payload));
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Discards all queued work, fails unfinished streams, and joins the
    /// workers. Streams that already completed their input still finish
    /// normally; streams with pending or future work get
    /// [`CaError::Internal`] from their next call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`shutdown`](ScanPool::shutdown).
    pub fn abort(mut self) -> Result<(), CaError> {
        {
            let mut inner = self.shared.lock();
            inner.mode = Mode::Aborted;
            inner.ready.clear();
            for stream in inner.streams.values_mut() {
                // A stream whose input was discarded must not later render
                // a prefix-only report as if it were complete.
                if stream.queued_bytes > 0 {
                    stream.error.get_or_insert_with(|| {
                        CaError::Internal(format!(
                            "scan pool aborted with {} bytes of this stream unprocessed",
                            stream.queued_bytes
                        ))
                    });
                }
                stream.queue.clear();
                stream.queued_bytes = 0;
                stream.scheduled = false;
            }
        }
        self.notify_all();
        let mut first_error = None;
        for handle in std::mem::take(&mut self.workers) {
            if let Err(payload) = handle.join() {
                first_error
                    .get_or_insert_with(|| join_panic_to_internal("scan pool worker", payload));
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn notify_all(&self) {
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        self.shared.done_cv.notify_all();
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // consumed by shutdown/abort
        }
        {
            let mut inner = self.shared.lock();
            if inner.mode == Mode::Running {
                inner.mode = Mode::Draining;
            }
        }
        self.notify_all();
        for handle in std::mem::take(&mut self.workers) {
            let _ = handle.join();
        }
    }
}

/// One logical input stream multiplexed through a [`ScanPool`].
///
/// The handle is the stream's only owner: feed it chunks, poll matches
/// incrementally, and [`finish`](StreamHandle::finish) it for the final
/// per-stream [`RunReport`]. Dropping the handle without finishing
/// abandons the stream (queued work is discarded).
pub struct StreamHandle {
    shared: Arc<Shared>,
    id: u64,
    finished: bool,
    /// Reusable delivery buffer for [`StreamHandle::poll_matches`]:
    /// cleared and refilled per call, so polling an idle stream allocates
    /// nothing.
    polled: Vec<MatchEvent>,
}

impl std::fmt::Debug for StreamHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamHandle").field("id", &self.id).finish()
    }
}

impl StreamHandle {
    /// Pool-assigned stream id (unique for the pool's lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Queues the next chunk of this stream, blocking while the stream's
    /// buffered bytes exceed [`PoolOptions::queue_bytes`] (backpressure).
    /// An empty chunk is a no-op.
    ///
    /// # Errors
    ///
    /// [`CaError::Config`] once the pool is shutting down;
    /// [`CaError::Internal`] if a worker failed while scanning this stream
    /// (the stream is lost, the pool and its other streams are not).
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), CaError> {
        if chunk.is_empty() {
            return Ok(());
        }
        let mut inner = self.shared.lock();
        let mut stalled = false;
        loop {
            if inner.mode != Mode::Running {
                return Err(CaError::Config("scan pool is shutting down".into()));
            }
            let stream =
                inner.streams.get_mut(&self.id).expect("stream state lives as long as its handle");
            if let Some(error) = &stream.error {
                return Err(error.clone());
            }
            if stream.queued_bytes < self.shared.queue_bytes {
                break;
            }
            if !stalled {
                stalled = true;
                self.shared.telemetry.counter("serve.backpressure_stalls", 1);
            }
            inner = match self.shared.space_cv.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let id = self.id;
        let inner_mut = &mut *inner;
        let stream = inner_mut.streams.get_mut(&id).expect("checked above");
        stream.queue.push_back(chunk.to_vec());
        stream.queued_bytes += chunk.len();
        let depth = stream.queued_bytes;
        let newly_ready = !stream.scheduled && !stream.running;
        if newly_ready {
            stream.scheduled = true;
            inner_mut.ready.push_back(id);
        }
        drop(inner);
        self.shared.telemetry.counter("serve.fed_bytes", chunk.len() as u64);
        self.shared.telemetry.gauge("serve.queue_depth", id, depth as f64);
        if newly_ready {
            self.shared.work_cv.notify_one();
        }
        Ok(())
    }

    /// Matches reported since the previous call (or since the stream
    /// opened), in feed order with absolute stream positions — the
    /// incremental delivery path. The final [`finish`](StreamHandle::finish)
    /// report independently carries *all* matches, sorted and deduplicated.
    ///
    /// The returned slice borrows a buffer the handle reuses across calls;
    /// polling an idle stream performs no allocation. Every call records the
    /// drained count (zero included) in the `serve.polled_events` counter,
    /// so the metric's sum is the total delivered incrementally and its
    /// event count is the number of polls.
    pub fn poll_matches(&mut self) -> &[MatchEvent] {
        self.polled.clear();
        let drained = {
            let mut inner = self.shared.lock();
            let stream =
                inner.streams.get_mut(&self.id).expect("stream state lives as long as its handle");
            self.polled.extend_from_slice(&stream.events[stream.delivered..]);
            stream.delivered = stream.events.len();
            self.polled.len()
        };
        self.shared.telemetry.counter("serve.polled_events", drained as u64);
        &self.polled
    }

    /// Closes the stream, waits for its queued chunks to be scanned, and
    /// returns the stream's [`RunReport`] — identical to what a dedicated
    /// [`Scanner`](crate::Scanner) session over the same chunks reports.
    ///
    /// # Errors
    ///
    /// [`CaError::Internal`] if a worker failed while scanning this stream
    /// or the pool was [`abort`](ScanPool::abort)ed first.
    pub fn finish(mut self) -> Result<RunReport, CaError> {
        self.finished = true;
        let shared = Arc::clone(&self.shared);
        let mut inner = shared.lock();
        if let Some(stream) = inner.streams.get_mut(&self.id) {
            stream.closed = true;
        }
        loop {
            let stream =
                inner.streams.get(&self.id).expect("stream state lives as long as its handle");
            if let Some(error) = stream.error.clone() {
                inner.streams.remove(&self.id);
                shared.emit_pool_gauges(&inner);
                return Err(error);
            }
            if stream.queue.is_empty() && !stream.running {
                break;
            }
            if inner.mode == Mode::Aborted {
                inner.streams.remove(&self.id);
                shared.emit_pool_gauges(&inner);
                return Err(CaError::Internal(
                    "scan pool aborted before the stream completed".into(),
                ));
            }
            inner = match shared.done_cv.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let stream = inner.streams.remove(&self.id).expect("present in the loop above");
        shared.emit_pool_gauges(&inner);
        drop(inner);

        // Identical finishing path to `Scanner::finish`: streams always
        // start at offset zero, so the pipeline fill is charged here and
        // refills count from the stream origin.
        let mut stats = stream.stats;
        finalize_session_stats(&mut stats, 0);
        let mut events = stream.events;
        events.sort_unstable();
        events.dedup();
        stats.emit_counters(&shared.program.telemetry());
        Ok(shared.program.report_from(events, stats))
    }
}

impl Session for StreamHandle {
    /// Queues the chunk on the pool, blocking under backpressure — see
    /// [`StreamHandle::feed`].
    fn feed(&mut self, chunk: &[u8]) -> Result<(), CaError> {
        StreamHandle::feed(self, chunk)
    }

    fn poll_matches(&mut self) -> &[MatchEvent] {
        StreamHandle::poll_matches(self)
    }

    fn finish(self) -> Result<RunReport, CaError> {
        StreamHandle::finish(self)
    }
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        let id = self.id;
        let mut inner = self.shared.lock();
        if inner.streams.remove(&id).is_some() {
            inner.ready.retain(|&ready_id| ready_id != id);
            self.shared.emit_pool_gauges(&inner);
        }
        drop(inner);
        // Abandoning a stream frees its queue; a feeder of another stream
        // is unaffected, but a worker may be waiting on this ring slot.
        self.shared.work_cv.notify_all();
    }
}

/// What one service of a stream produced, computed outside the lock.
type BatchOutcome = Result<(Vec<MatchEvent>, ExecStats, Option<Snapshot>), CaError>;

fn worker_loop(shared: &Shared) {
    let mut inner = shared.lock();
    loop {
        // Wait for a serviceable stream: ready work plus an available (or
        // creatable) fabric — or an exit condition.
        let id = loop {
            match inner.mode {
                Mode::Aborted => return,
                Mode::Draining if inner.ready.is_empty() => return,
                _ => {}
            }
            let fabric_available =
                !inner.idle_fabrics.is_empty() || inner.fabrics_created < shared.max_fabrics;
            if fabric_available {
                if let Some(id) = inner.ready.pop_front() {
                    break id;
                }
            }
            inner = match shared.work_cv.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        };

        // Deficit round robin: grant the quantum, take whole chunks up to
        // the accumulated credit (a single oversized chunk is still taken
        // whole — chunks are indivisible), and carry leftover credit only
        // while the stream stays backlogged.
        let Some(stream) = inner.streams.get_mut(&id) else {
            continue; // handle dropped between scheduling and service
        };
        stream.scheduled = false;
        stream.deficit = stream.deficit.saturating_add(shared.quantum);
        let mut batch: Vec<Vec<u8>> = Vec::new();
        let mut batch_bytes = 0usize;
        while batch_bytes < stream.deficit {
            let Some(chunk) = stream.queue.pop_front() else { break };
            batch_bytes += chunk.len();
            stream.queued_bytes -= chunk.len();
            batch.push(chunk);
        }
        if stream.queue.is_empty() {
            stream.deficit = 0;
        } else {
            stream.deficit -= batch_bytes.min(stream.deficit);
        }
        if batch.is_empty() {
            // Scheduled with nothing queued (e.g. racing an abandon) —
            // nothing to do.
            shared.done_cv.notify_all();
            continue;
        }
        stream.running = true;
        let resume = stream.snapshot.take();

        // Claim a fabric: recycle an idle one or mint a new instance under
        // the bound (reserved inside the lock, built outside it).
        let pooled = inner.idle_fabrics.pop();
        if pooled.is_none() {
            inner.fabrics_created += 1;
        }
        shared.emit_pool_gauges(&inner);
        drop(inner);

        let mut fabric = pooled.unwrap_or_else(|| shared.program.fabric());
        shared.telemetry.gauge("serve.batch_size", id, batch_bytes as f64);

        // Run the batch with panic containment: a panicking scan must not
        // take down the pool, and the fabric that hit it may hold corrupt
        // scratch, so it is discarded instead of recycled.
        let outcome: Result<BatchOutcome, _> = catch_unwind(AssertUnwindSafe(|| {
            let mut events = Vec::new();
            let mut stats = ExecStats::default();
            let mut resume = resume;
            for chunk in &batch {
                let options = RunOptions { resume: resume.take(), ..Default::default() };
                let report = fabric.run_with(chunk, &options).map_err(|e| {
                    CaError::Internal(format!("pooled fabric rejected its own snapshot: {e}"))
                })?;
                resume = report.snapshot;
                events.extend(report.events);
                stats.absorb_activity(&report.stats);
            }
            Ok((events, stats, resume))
        }));

        let fabric_back = match &outcome {
            Ok(_) => {
                // State rides in the stream's snapshot, not the fabric, so
                // the instance is recycled for *any* stream after a cheap
                // scratch reset.
                fabric.reset();
                Some(fabric)
            }
            Err(_) => None,
        };

        inner = shared.lock();
        match fabric_back {
            Some(fabric) => inner.idle_fabrics.push(fabric),
            None => inner.fabrics_created -= 1,
        }
        let mut reschedule = false;
        if let Some(stream) = inner.streams.get_mut(&id) {
            stream.running = false;
            match outcome {
                Ok(Ok((events, stats, snapshot))) => {
                    stream.events.extend(events);
                    stream.stats.absorb_activity(&stats);
                    stream.snapshot = snapshot;
                    reschedule = !stream.queue.is_empty();
                }
                Ok(Err(error)) => {
                    stream.error = Some(error);
                    stream.queue.clear();
                    stream.queued_bytes = 0;
                }
                Err(payload) => {
                    stream.error = Some(join_panic_to_internal("scan pool batch", payload));
                    stream.queue.clear();
                    stream.queued_bytes = 0;
                }
            }
        }
        if reschedule && inner.mode != Mode::Aborted {
            let inner_mut = &mut *inner;
            if let Some(stream) = inner_mut.streams.get_mut(&id) {
                stream.scheduled = true;
                inner_mut.ready.push_back(id);
            }
        }
        shared.emit_pool_gauges(&inner);
        // A fabric went back to the pool and queue space opened up:
        // everyone gets a look.
        shared.work_cv.notify_all();
        shared.space_cv.notify_all();
        shared.done_cv.notify_all();
    }
}
