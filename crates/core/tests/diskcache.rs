//! Integration tests for the persistent disk tier of the artifact cache:
//! artifacts written by one process (or one `CacheAutomaton`) must come
//! back bit-identical in another; damaged files must degrade to a counted
//! recompile, never an error; concurrent writers must not tear each
//! other's artifacts; and the `CACHE_AUTOMATON_DIR` environment wiring
//! must behave exactly like an explicit `disk_cache(path)`.

use cache_automaton::{CacheAutomaton, Telemetry, CACHE_DIR_ENV};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ca-diskcache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Serializes tests that mutate `CACHE_AUTOMATON_DIR` — the environment
/// is process-global, and every `Builder` without an explicit disk choice
/// consults it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// All `.capr` artifact files under a cache root, sorted.
fn artifact_files(root: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().and_then(|e| e.to_str()) == Some("capr") {
                out.push(path);
            }
        }
    }
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn automaton_with_disk(root: &Path, telemetry: Telemetry) -> CacheAutomaton {
    CacheAutomaton::builder().disk_cache(root).telemetry_handle(telemetry).build()
}

#[test]
fn a_second_automaton_loads_from_disk_without_compiling() {
    let scratch = Scratch::new("reload");
    let patterns = ["warm.?start", "cache"];

    let cold = automaton_with_disk(scratch.path(), Telemetry::disabled());
    let first = cold.compile_patterns(&patterns).unwrap();
    let disk = cold.disk_cache_stats().expect("disk tier is attached");
    assert_eq!((disk.hits, disk.misses, disk.writes), (0, 1, 1), "cold run misses then writes");
    assert_eq!(artifact_files(scratch.path()).len(), 1);

    // A brand-new automaton — fresh memory tier, same directory — finds
    // the artifact on disk and never reaches the compiler.
    let recorder = Arc::new(ca_telemetry::MemoryRecorder::new());
    let warm = automaton_with_disk(scratch.path(), Telemetry::from_arc(recorder.clone()));
    let second = warm.compile_patterns(&patterns).unwrap();
    assert_eq!(second.to_bytes(), first.to_bytes(), "artifact is bit-identical across processes");
    let disk = warm.disk_cache_stats().unwrap();
    assert_eq!((disk.hits, disk.misses), (1, 0));
    assert_eq!(recorder.counter("cache.disk.hits"), 1);
    assert_eq!(recorder.counter("compile.compilations"), 0, "no compiler pass ran");
}

#[test]
fn corrupt_and_truncated_artifacts_fall_back_to_recompile() {
    let scratch = Scratch::new("corrupt");
    let patterns = ["d[ae]mage"];
    let reference = automaton_with_disk(scratch.path(), Telemetry::disabled())
        .compile_patterns(&patterns)
        .unwrap();
    let stored = artifact_files(scratch.path());
    assert_eq!(stored.len(), 1);

    // Flip a payload byte: the checksum fails, the file is quarantined,
    // the counter fires, and the caller silently recompiles.
    let mut bytes = std::fs::read(&stored[0]).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x40;
    std::fs::write(&stored[0], &bytes).unwrap();

    let recorder = Arc::new(ca_telemetry::MemoryRecorder::new());
    let ca = automaton_with_disk(scratch.path(), Telemetry::from_arc(recorder.clone()));
    let recompiled = ca.compile_patterns(&patterns).unwrap();
    assert_eq!(recompiled.to_bytes(), reference.to_bytes());
    assert_eq!(recorder.counter("cache.disk.corrupt"), 1);
    let quarantined: Vec<_> = std::fs::read_dir(stored[0].parent().unwrap())
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("corrupt"))
        .collect();
    assert_eq!(quarantined.len(), 1, "damaged file moved out of the lookup path");
    // The write-through replaced the entry, so the *next* reader hits.
    let fresh = automaton_with_disk(scratch.path(), Telemetry::disabled());
    let _ = fresh.compile_patterns(&patterns).unwrap();
    assert_eq!(fresh.disk_cache_stats().unwrap().hits, 1);

    // Truncation (a torn write that somehow survived) behaves the same.
    let stored = artifact_files(scratch.path());
    let bytes = std::fs::read(&stored[0]).unwrap();
    std::fs::write(&stored[0], &bytes[..bytes.len() / 3]).unwrap();
    let recorder = Arc::new(ca_telemetry::MemoryRecorder::new());
    let ca = automaton_with_disk(scratch.path(), Telemetry::from_arc(recorder.clone()));
    assert_eq!(ca.compile_patterns(&patterns).unwrap().to_bytes(), reference.to_bytes());
    assert_eq!(recorder.counter("cache.disk.corrupt"), 1);
}

#[test]
fn eviction_from_memory_falls_through_to_disk() {
    let scratch = Scratch::new("evict");
    let ca = CacheAutomaton::builder().disk_cache(scratch.path()).cache_capacity(1).build();
    let first = ca.compile_patterns(&["alpha"]).unwrap();
    // A single use of "beta" cannot displace "alpha" (TinyLFU admission),
    // but the artifact still lands on disk; the second use out-frequencies
    // the resident and evicts it from the 1-entry memory tier.
    let _ = ca.compile_patterns(&["beta"]).unwrap();
    let _ = ca.compile_patterns(&["beta"]).unwrap();
    let memory = ca.cache_stats();
    assert_eq!(memory.evictions, 1, "{memory:?}");

    let again = ca.compile_patterns(&["alpha"]).unwrap();
    assert_eq!(again.to_bytes(), first.to_bytes());
    let disk = ca.disk_cache_stats().unwrap();
    // "beta" (second use) and "alpha" (after eviction) both came back from
    // the disk tier instead of a recompile.
    assert_eq!(disk.hits, 2, "evicted programs came back from the disk tier: {disk:?}");
}

#[test]
fn zero_capacity_memory_still_uses_the_disk_tier() {
    let scratch = Scratch::new("zerocap");
    let ca = CacheAutomaton::builder().disk_cache(scratch.path()).cache_capacity(0).build();
    let first = ca.compile_patterns(&["stateless"]).unwrap();
    let second = ca.compile_patterns(&["stateless"]).unwrap();
    assert_eq!(first.to_bytes(), second.to_bytes());
    let disk = ca.disk_cache_stats().unwrap();
    assert_eq!(
        (disk.hits, disk.misses, disk.writes),
        (1, 1, 1),
        "disk serves what memory cannot hold"
    );
}

#[test]
fn concurrent_writers_leave_one_valid_artifact() {
    let scratch = Scratch::new("race");
    let patterns = ["race[0-9]+", "condition"];
    let programs: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let root = scratch.path().to_path_buf();
                scope.spawn(move || {
                    automaton_with_disk(&root, Telemetry::disabled())
                        .compile_patterns(&patterns)
                        .unwrap()
                        .to_bytes()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for bytes in &programs[1..] {
        assert_eq!(bytes, &programs[0], "every writer produced the canonical artifact");
    }
    let stored = artifact_files(scratch.path());
    assert_eq!(stored.len(), 1, "one key, one file");
    // Whatever interleaving won, the stored artifact is whole and valid.
    let ca = automaton_with_disk(scratch.path(), Telemetry::disabled());
    assert_eq!(ca.compile_patterns(&patterns).unwrap().to_bytes(), programs[0]);
    assert_eq!(ca.disk_cache_stats().unwrap().hits, 1);
}

#[test]
fn env_var_attaches_the_disk_tier_like_the_builder_call() {
    let _guard = ENV_LOCK.lock().unwrap();
    let scratch = Scratch::new("env");

    std::env::set_var(CACHE_DIR_ENV, scratch.path());
    let ca = CacheAutomaton::new();
    let _ = ca.compile_patterns(&["from.?env"]).unwrap();
    assert_eq!(artifact_files(scratch.path()).len(), 1, "env-configured tier wrote through");
    assert!(ca.disk_cache_stats().is_some());

    // An explicit opt-out beats the environment.
    let ca = CacheAutomaton::builder().no_disk_cache().build();
    let _ = ca.compile_patterns(&["opt.?out"]).unwrap();
    assert!(ca.disk_cache_stats().is_none());
    assert_eq!(artifact_files(scratch.path()).len(), 1, "no new artifact");

    // An empty value means unset.
    std::env::set_var(CACHE_DIR_ENV, "");
    let ca = CacheAutomaton::new();
    let _ = ca.compile_patterns(&["empty"]).unwrap();
    assert!(ca.disk_cache_stats().is_none());

    std::env::remove_var(CACHE_DIR_ENV);
}

/// The real thing: two *processes* (the `cactl` binary) sharing one cache
/// directory. The second must report identical matches while logging a
/// disk hit and not a single compiler pass — the claim the CI smoke job
/// re-checks from the outside.
#[test]
fn cactl_processes_share_the_cache_directory() {
    let scratch = Scratch::new("cactl");
    let rules = scratch.path().join("rules.txt");
    let input = scratch.path().join("input.bin");
    let cache = scratch.path().join("cache");
    std::fs::write(&rules, "warm\nst[aeiou]rt\n").unwrap();
    std::fs::write(&input, b"a warm start beats a cold start every time").unwrap();

    let run = |metrics: &Path| {
        let output = Command::new(env!("CARGO_BIN_EXE_cactl"))
            .env_remove(CACHE_DIR_ENV)
            .arg("run")
            .arg(&rules)
            .arg(&input)
            .arg("--cache-dir")
            .arg(&cache)
            .arg("--metrics")
            .arg(metrics)
            .output()
            .unwrap();
        assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
        String::from_utf8(output.stdout).unwrap()
    };

    let cold_metrics = scratch.path().join("cold.jsonl");
    let warm_metrics = scratch.path().join("warm.jsonl");
    // The report must be bit-identical; only the `metrics written` line
    // names the (different) sink file.
    let report = |stdout: &str| -> String {
        stdout.lines().filter(|l| !l.starts_with("metrics written")).collect::<Vec<_>>().join("\n")
    };
    let cold = run(&cold_metrics);
    let warm = run(&warm_metrics);
    assert_eq!(report(&cold), report(&warm), "reports are bit-identical across processes");

    let cold_log = std::fs::read_to_string(&cold_metrics).unwrap();
    let warm_log = std::fs::read_to_string(&warm_metrics).unwrap();
    assert!(cold_log.contains("compile.pass."), "first process compiled");
    assert!(cold_log.contains("cache.disk.writes"), "first process wrote through");
    assert!(warm_log.contains("cache.disk.hits"), "second process hit the disk tier");
    assert!(!warm_log.contains("compile.pass."), "second process never ran a compiler pass");
}
