//! Property tests for the serving wire protocol: every frame the
//! encoder can produce must decode back to itself; every damaged input —
//! truncated, oversized, version-skewed, bit-flipped, or outright garbage
//! — must come back as a typed [`ProtoError`], never a panic and never a
//! silently wrong frame.

use cache_automaton::cache::disk::relative_path;
use cache_automaton::serve::proto::{read_frame, write_frame};
use cache_automaton::{
    CaError, CacheKey, Design, Fingerprint, Frame, MatchEvent, ProtoError, ReportCode, ServerStats,
    WireReport,
};
use proptest::prelude::*;

fn event_strategy() -> impl Strategy<Value = MatchEvent> {
    (any::<u64>(), any::<u32>()).prop_map(|(pos, code)| MatchEvent { pos, code: ReportCode(code) })
}

fn cache_key_strategy() -> impl Strategy<Value = CacheKey> {
    // u128 fingerprints assembled from two u64 halves
    (any::<u64>(), any::<u64>(), any::<bool>(), 0usize..=64, any::<u64>(), any::<bool>()).prop_map(
        |(hi, lo, space, slices, seed, optimized)| CacheKey {
            fingerprint: Fingerprint(((hi as u128) << 64) | lo as u128),
            design: if space { Design::Space } else { Design::Performance },
            slices,
            seed,
            optimized,
        },
    )
}

fn report_strategy() -> impl Strategy<Value = WireReport> {
    (
        prop::collection::vec(event_strategy(), 0..20),
        prop::collection::vec(any::<u64>(), 0..6),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(events, per_partition_active, symbols, cycles)| {
            let mut exec = cache_automaton::ExecStats {
                symbols,
                cycles,
                per_partition_active,
                ..Default::default()
            };
            exec.reports = events.len() as u64;
            WireReport { events, exec }
        })
}

/// Every wire frame, with arbitrary payloads.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    let stats = (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(generation, reloads, live_streams, connections, streams_served)| {
            Frame::StatsReply(ServerStats {
                generation,
                reloads,
                live_streams,
                connections,
                streams_served,
            })
        },
    );
    prop_oneof![
        Just(Frame::OpenStream),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(stream, data)| Frame::FeedChunk { stream, data }),
        any::<u64>().prop_map(|stream| Frame::PollMatches { stream }),
        any::<u64>().prop_map(|stream| Frame::Finish { stream }),
        Just(Frame::Stats),
        prop::collection::vec(any::<u8>(), 0..120)
            .prop_map(|v| Frame::Reload { rules: String::from_utf8_lossy(&v).into_owned() }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(stream, generation)| Frame::StreamOpened { stream, generation }),
        (any::<u64>(), any::<u64>()).prop_map(|(stream, bytes)| Frame::FeedAck { stream, bytes }),
        (any::<u64>(), prop::collection::vec(event_strategy(), 0..50))
            .prop_map(|(stream, events)| Frame::Matches { stream, events }),
        (any::<u64>(), report_strategy())
            .prop_map(|(stream, report)| Frame::Finished { stream, report }),
        stats,
        any::<u64>().prop_map(|generation| Frame::ReloadOk { generation }),
        cache_key_strategy().prop_map(|key| Frame::CacheGet { key }),
        (cache_key_strategy(), prop::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(key, artifact)| Frame::CachePut { key, artifact }),
        prop::collection::vec(any::<u8>(), 0..200)
            .prop_map(|artifact| Frame::CacheFound { artifact }),
        Just(Frame::CacheMiss),
        Just(Frame::CachePutOk),
        (any::<u16>(), prop::collection::vec(any::<u8>(), 0..80)).prop_map(|(code, v)| {
            Frame::Error { code, message: String::from_utf8_lossy(&v).into_owned() }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity, consuming exactly the encoding.
    #[test]
    fn round_trip(frame in frame_strategy()) {
        let bytes = frame.encode().unwrap();
        let (back, consumed) = Frame::decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// A decoder fed a partial frame asks for more bytes (`Ok(None)`)
    /// at *every* split point — it never misparses a prefix.
    #[test]
    fn prefixes_are_incomplete_not_wrong(frame in frame_strategy(), cut in any::<u64>()) {
        let bytes = frame.encode().unwrap();
        let cut = (cut as usize) % bytes.len().max(1);
        prop_assert!(Frame::decode(&bytes[..cut]).unwrap().is_none());
    }

    /// Back-to-back frames decode in order from one buffer, each
    /// reporting its own length.
    #[test]
    fn frames_are_self_delimiting(frames in prop::collection::vec(frame_strategy(), 1..5)) {
        let mut buf = Vec::new();
        for frame in &frames {
            frame.encode_into(&mut buf).unwrap();
        }
        let mut offset = 0;
        for frame in &frames {
            let (back, consumed) = Frame::decode(&buf[offset..]).unwrap().expect("complete");
            prop_assert_eq!(&back, frame);
            offset += consumed;
        }
        prop_assert_eq!(offset, buf.len());
    }

    /// A frame stamped with a foreign protocol version is rejected before
    /// anything else about it is believed (even its length field).
    #[test]
    fn version_skew_is_rejected(frame in frame_strategy(), version in any::<u8>()) {
        prop_assume!(version != cache_automaton::PROTO_VERSION);
        let mut bytes = frame.encode().unwrap();
        bytes[4] = version;
        prop_assert_eq!(Frame::decode(&bytes).unwrap_err(), ProtoError::Version { got: version });
    }

    /// Arbitrary garbage never panics the decoder: it either wants more
    /// bytes, fails typed, or — if it happens to spell a valid frame —
    /// consumes no more than it was given.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(Some((_, consumed))) = Frame::decode(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// Flipping any single byte of a valid encoding never panics and
    /// never yields a frame longer than the input.
    #[test]
    fn bit_flips_never_panic(frame in frame_strategy(), at in any::<u64>(), with in any::<u8>()) {
        let mut bytes = frame.encode().unwrap();
        let at = (at as usize) % bytes.len();
        bytes[at] ^= with;
        if let Ok(Some((_, consumed))) = Frame::decode(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// The stream reader yields the exact frame sequence then a clean
    /// end-of-stream; the same sequence cut mid-frame is a typed
    /// protocol error, not a hang or a panic.
    #[test]
    fn stream_reader_round_trip_and_truncation(
        frames in prop::collection::vec(frame_strategy(), 1..4),
        cut in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        for frame in &frames {
            write_frame(&mut buf, frame).unwrap();
        }
        let mut reader = &buf[..];
        for frame in &frames {
            prop_assert_eq!(&read_frame(&mut reader).unwrap().expect("frame"), frame);
        }
        prop_assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF at a boundary");

        // Now truncate inside some frame and require a typed error.
        let cut = (cut as usize) % buf.len();
        let mut partial = &buf[..cut];
        loop {
            match read_frame(&mut partial) {
                Ok(Some(_)) => continue, // frames wholly before the cut
                Ok(None) => {
                    // Only legal when the cut landed exactly on a frame
                    // boundary.
                    let mut boundary = 0;
                    let mut offsets = vec![0];
                    for frame in &frames {
                        boundary += frame.encode().unwrap().len();
                        offsets.push(boundary);
                    }
                    prop_assert!(offsets.contains(&cut), "EOF mid-frame must be an error");
                    break;
                }
                Err(e) => {
                    prop_assert!(matches!(e, CaError::Protocol(_)), "{}", e);
                    break;
                }
            }
        }
    }

    /// Every disk-cache path is relative, three components deep, and made
    /// only of filesystem-safe characters — no separators, traversal, or
    /// reserved names can be smuggled in through a hostile fingerprint.
    #[test]
    fn disk_paths_are_filesystem_safe(key in cache_key_strategy()) {
        let path = relative_path(&key);
        prop_assert!(path.is_relative());
        let parts: Vec<String> = path
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        prop_assert_eq!(parts.len(), 3);
        for part in &parts {
            prop_assert!(!part.is_empty());
            prop_assert!(part != ".." && part != ".");
            prop_assert!(
                part.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'),
                "unsafe character in path component {:?}", part
            );
        }
    }

    /// The key → path encoding is injective: distinct keys never collide
    /// on a file (a collision would serve one compilation's artifact for
    /// another's options).
    #[test]
    fn disk_paths_never_collide(a in cache_key_strategy(), b in cache_key_strategy()) {
        if a != b {
            prop_assert_ne!(relative_path(&a), relative_path(&b));
        } else {
            prop_assert_eq!(relative_path(&a), relative_path(&b));
        }
    }
}
