//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses (`StdRng`/`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The container this repository builds in has no crates.io access, so the
//! real `rand` cannot be fetched; everything here is deterministic and
//! self-contained. The generator is xoshiro256** seeded through SplitMix64
//! — statistically solid for workload synthesis, not cryptographic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Seedable generators (mirrors `rand::rngs`).
pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    /// Same generator under the `SmallRng` name.
    pub type SmallRng = StdRng;
}

use rngs::StdRng;

impl StdRng {
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, as the real rand does for small seeds.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

/// Ranges `gen_range` accepts (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let unit = (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Value-generation interface (mirrors `rand::Rng`).
pub trait Rng {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool({p})");
        ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = r.gen_range(2..=4u32);
            assert!((2..=4).contains(&w));
            let f = r.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_sane() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
