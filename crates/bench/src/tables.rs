//! Table reproductions (paper Tables 1–5).

use crate::markdown::{fnum, Table};
use crate::suite::{workload_with_input, BenchResult, RunConfig};
use ca_baselines::{HARE, UAP};
use ca_compiler::{compile, CompilerOptions};
use ca_sim::{
    area_for_stes, design_timing, energy_report, pipeline_timing, DesignKind, EnergyParams, Fabric,
    SwitchSpec, TimingParams, WireLayer,
};

/// Table 1 — benchmark characteristics, measured vs published.
pub fn table1(results: &[BenchResult]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "States",
        "(paper)",
        "CCs",
        "(paper)",
        "LargestCC",
        "(paper)",
        "AvgActive",
        "(paper)",
        "S-States",
        "(paper)",
        "S-CCs",
        "(paper)",
        "S-AvgActive",
        "(paper)",
    ]);
    for r in results {
        let p = r.benchmark.table1();
        t.row([
            r.benchmark.name().to_string(),
            r.perf.states.to_string(),
            p.states.to_string(),
            r.perf.ccs.to_string(),
            p.connected_components.to_string(),
            r.perf.largest_cc.to_string(),
            p.largest_cc.to_string(),
            fnum(r.perf.stats.avg_active_states_per_symbol(), 2),
            fnum(p.avg_active, 2),
            format!("{}{}", r.space.states, if r.space_fallback { "*" } else { "" }),
            p.space_states.to_string(),
            r.space.ccs.to_string(),
            p.space_ccs.to_string(),
            fnum(r.space.stats.avg_active_states_per_symbol(), 2),
            fnum(p.space_avg_active, 2),
        ]);
    }
    format!(
        "## Table 1: benchmark characteristics (measured vs paper)\n\n{}\n\
         `*` = space automaton exceeded the slice routing domain; CA_S fell back to the baseline NFA.\n",
        t.render()
    )
}

/// Table 2 — switch parameters (from the circuit model; anchors match the
/// published values exactly).
pub fn table2() -> String {
    let mut t = Table::new([
        "Design",
        "Switch",
        "Size",
        "Delay (ps)",
        "Energy (pJ/bit)",
        "Area (mm2)",
        "Count/slice",
    ]);
    let rows: [(&str, &str, SwitchSpec, usize); 5] = [
        ("CA_P", "L-switch", SwitchSpec::LOCAL, 64),
        ("CA_P", "G-switch (1 way)", SwitchSpec::G1_PERF, 8),
        ("CA_S", "L-switch", SwitchSpec::LOCAL, 128),
        ("CA_S", "G-switch (1 way)", SwitchSpec::G1_SPACE, 8),
        ("CA_S", "G-switch (4 ways)", SwitchSpec::G4_SPACE, 2),
    ];
    for (design, name, spec, count) in rows {
        t.row([
            design.to_string(),
            name.to_string(),
            spec.to_string(),
            fnum(spec.delay_ps(), 1),
            fnum(spec.energy_pj_per_bit(), 3),
            fnum(spec.area_mm2(), 4),
            count.to_string(),
        ]);
    }
    format!("## Table 2: switch parameters\n\n{}", t.render())
}

/// Table 3 — pipeline stage delays and operating frequency.
pub fn table3() -> String {
    let mut t = Table::new([
        "Design",
        "State-Match (ps)",
        "G-Switch (ps)",
        "L-Switch (ps)",
        "Max Freq (GHz)",
        "Operated (GHz)",
        "Paper",
    ]);
    for (design, paper) in [
        (DesignKind::Performance, "438 / 227 / 263 -> 2.3 / 2.0"),
        (DesignKind::Space, "687 / 468 / 304 -> 1.4 / 1.2"),
    ] {
        let ti = design_timing(design);
        t.row([
            design.to_string(),
            fnum(ti.state_match_ps, 0),
            fnum(ti.gswitch_ps, 0),
            fnum(ti.lswitch_ps, 0),
            fnum(ti.max_freq_ghz(), 1),
            fnum(ti.operating_freq_ghz(), 1),
            paper.to_string(),
        ]);
    }
    format!("## Table 3: pipeline stage delays and operating frequency\n\n{}", t.render())
}

/// Table 4 — ablation: sense-amp cycling and H-Bus wiring.
pub fn table4() -> String {
    let mut t = Table::new(["Design", "Achieved", "w/o SA cycling", "with H-Bus", "Paper"]);
    let params = TimingParams::default();
    for (design, paper) in [
        (DesignKind::Performance, "2 GHz / 1 GHz / 1.5 GHz"),
        (DesignKind::Space, "1.2 GHz / 500 MHz / 1 GHz"),
    ] {
        let base = pipeline_timing(design, &params, true, WireLayer::GlobalMetal);
        let no_sa = pipeline_timing(design, &params, false, WireLayer::GlobalMetal);
        let hbus = pipeline_timing(design, &params, true, WireLayer::HBus);
        t.row([
            design.to_string(),
            format!("{} GHz", fnum(base.operating_freq_ghz(), 1)),
            format!("{} GHz", fnum(no_sa.operating_freq_ghz(), 1)),
            format!("{} GHz", fnum(hbus.operating_freq_ghz(), 1)),
            paper.to_string(),
        ]);
    }
    format!("## Table 4: impact of optimizations\n\n{}", t.render())
}

/// Table 5 — comparison with HARE and UAP on Dotstar0.9.
pub fn table5(config: &RunConfig) -> String {
    let (workload, input) = workload_with_input(ca_workloads::Benchmark::Dotstar09, config);
    let bytes_10mb: u64 = 10 * 1024 * 1024;
    let mut t = Table::new(["Metric", "HARE (W=32)", "UAP", "CA_P", "CA_S", "Paper (CA_P/CA_S)"]);
    let mut ca: Vec<(f64, f64, f64, f64)> = Vec::new(); // gbps, ms, W, nJ/B
    for design in [DesignKind::Performance, DesignKind::Space] {
        let nfa = if design == DesignKind::Space {
            workload.space_optimized()
        } else {
            workload.nfa.clone()
        };
        let compiled =
            compile(&nfa, &CompilerOptions { design, seed: config.seed, ..Default::default() })
                .expect("Dotstar09 fits the prototype geometry");
        let exec = Fabric::new(&compiled.bitstream).expect("valid").run(&input);
        let ti = design_timing(design);
        let energy =
            energy_report(&exec.stats, design, &EnergyParams::default(), ti.operating_freq_ghz());
        let gbps = ti.throughput_gbps();
        let ms = bytes_10mb as f64 * 8.0 / (gbps * 1e9) * 1e3;
        ca.push((gbps, ms, energy.avg_power_w, energy.per_symbol_nj));
    }
    let rows: [(&str, f64, f64, f64, f64, &str); 5] = [
        (
            "Throughput (Gbps)",
            HARE.throughput_gbps,
            UAP.throughput_gbps,
            ca[0].0,
            ca[1].0,
            "15.6 / 9.4",
        ),
        (
            "Runtime (ms, 10MB)",
            HARE.scan_time_ms(bytes_10mb),
            UAP.scan_time_ms(bytes_10mb),
            ca[0].1,
            ca[1].1,
            "5.24 / 8.74",
        ),
        ("Power (W)", HARE.power_w, UAP.power_w, ca[0].2, ca[1].2, "7.72 / 1.08"),
        (
            "Energy (nJ/byte)",
            HARE.energy_nj_per_byte,
            UAP.energy_nj_per_byte,
            ca[0].3,
            ca[1].3,
            "4.04 / 0.94",
        ),
        (
            "Area (mm2)",
            HARE.area_mm2,
            UAP.area_mm2,
            area_for_stes(DesignKind::Performance, 32 * 1024).total_mm2(),
            area_for_stes(DesignKind::Space, 32 * 1024).total_mm2(),
            "4.3 / 4.6",
        ),
    ];
    for (name, hare, uap, cap, cas, paper) in rows {
        t.row([
            name.to_string(),
            fnum(hare, 2),
            fnum(uap, 2),
            fnum(cap, 2),
            fnum(cas, 2),
            paper.to_string(),
        ]);
    }
    format!("## Table 5: comparison with HARE and UAP (Dotstar0.9)\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::run_benchmark;
    use ca_workloads::{Benchmark, Scale};

    #[test]
    fn static_tables_render() {
        for s in [table2(), table3(), table4()] {
            assert!(s.contains("CA_P"));
            assert!(s.contains("CA_S"));
            assert!(s.lines().count() > 5);
        }
        assert!(table3().contains("438"));
        assert!(table2().contains("163.5"));
    }

    #[test]
    fn table1_renders_measured_rows() {
        let config = RunConfig { scale: Scale::tiny(), input_kib: 4, seed: 3 };
        let results = vec![run_benchmark(Benchmark::Bro217, &config)];
        let s = table1(&results);
        assert!(s.contains("Bro217"));
        assert!(s.contains("2312")); // paper target present
    }

    #[test]
    fn table5_renders_all_metrics() {
        let config = RunConfig { scale: Scale(0.05), input_kib: 8, seed: 3 };
        let s = table5(&config);
        for metric in ["Throughput", "Runtime", "Power", "Energy", "Area"] {
            assert!(s.contains(metric), "{metric} missing");
        }
        assert!(s.contains("125")); // HARE power
        assert!(s.contains("5.67")); // UAP area
    }
}
