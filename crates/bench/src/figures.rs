//! Figure reproductions (paper Figures 7–10) and the headline summary.

use crate::markdown::{fnum, Table};
use crate::suite::{ap, BenchResult, RunConfig};
use ca_baselines::{measure_cpu, AP_OVER_CPU};
use ca_sim::design_space;
use ca_workloads::Benchmark;

/// Figure 7 — throughput in Gb/s per benchmark (CA_P, CA_S, AP).
///
/// Cache Automaton and AP both process exactly one symbol per cycle, so the
/// series are flat across benchmarks — as in the paper's figure.
pub fn fig7(results: &[BenchResult]) -> String {
    let ap_gbps = ap().throughput_gbps();
    let mut t =
        Table::new(["Benchmark", "CA_P (Gb/s)", "CA_S (Gb/s)", "AP (Gb/s)", "CA_P/AP", "CA_S/AP"]);
    for r in results {
        let p = ca_sim::design_timing(ca_sim::DesignKind::Performance).throughput_gbps();
        let s = ca_sim::design_timing(ca_sim::DesignKind::Space).throughput_gbps();
        t.row([
            r.benchmark.name().to_string(),
            fnum(p, 1),
            fnum(s, 1),
            fnum(ap_gbps, 3),
            fnum(p / ap_gbps, 1),
            fnum(s / ap_gbps, 1),
        ]);
    }
    format!(
        "## Figure 7: overall throughput vs Micron's AP\n\n{}\nPaper: CA_P 15x, CA_S 9x over AP on every benchmark.\n",
        t.render()
    )
}

/// Figure 8 — cache utilization (MB) per benchmark.
pub fn fig8(results: &[BenchResult]) -> String {
    let mut t =
        Table::new(["Benchmark", "CA_P (MB)", "CA_S (MB)", "CA_P partitions", "CA_S partitions"]);
    let (mut sum_p, mut sum_s) = (0.0, 0.0);
    for r in results {
        sum_p += r.perf.utilization_mb;
        sum_s += r.space.utilization_mb;
        t.row([
            r.benchmark.name().to_string(),
            fnum(r.perf.utilization_mb, 3),
            format!(
                "{}{}",
                fnum(r.space.utilization_mb, 3),
                if r.space_fallback { "*" } else { "" }
            ),
            r.perf.partitions.to_string(),
            r.space.partitions.to_string(),
        ]);
    }
    let n = results.len().max(1) as f64;
    t.row([
        "**Average**".to_string(),
        fnum(sum_p / n, 3),
        fnum(sum_s / n, 3),
        String::new(),
        String::new(),
    ]);
    format!(
        "## Figure 8: cache utilization\n\n{}\nPaper averages: CA_P 1.2 MB, CA_S 0.725 MB.\n",
        t.render()
    )
}

/// Figure 9 — energy per symbol and average power.
pub fn fig9(results: &[BenchResult]) -> String {
    let mut t = Table::new([
        "Benchmark",
        "CA_P (nJ/sym)",
        "CA_S (nJ/sym)",
        "IdealAP w/CA_S (nJ/sym)",
        "CA_P power (W)",
        "CA_S power (W)",
    ]);
    let (mut sum_s, mut sum_ap) = (0.0, 0.0);
    for r in results {
        sum_s += r.space.energy.per_symbol_nj;
        sum_ap += r.space.ideal_ap_nj;
        t.row([
            r.benchmark.name().to_string(),
            fnum(r.perf.energy.per_symbol_nj, 3),
            fnum(r.space.energy.per_symbol_nj, 3),
            fnum(r.space.ideal_ap_nj, 3),
            fnum(r.perf.energy.avg_power_w, 2),
            fnum(r.space.energy.avg_power_w, 2),
        ]);
    }
    let n = results.len().max(1) as f64;
    t.row([
        "**Average**".to_string(),
        String::new(),
        fnum(sum_s / n, 3),
        fnum(sum_ap / n, 3),
        String::new(),
        String::new(),
    ]);
    format!(
        "## Figure 9: energy per input symbol and power\n\n{}\nPaper: CA_S averages 2.3 nJ/symbol, ~3x below Ideal AP with the same mapping.\n",
        t.render()
    )
}

/// Figure 10 — frequency and area overhead vs reachability.
pub fn fig10() -> String {
    let mut t = Table::new([
        "Design point",
        "Reachability",
        "Freq (GHz)",
        "Area @32K STEs (mm2)",
        "Max fan-in",
    ]);
    for p in design_space() {
        t.row([
            p.name.clone(),
            fnum(p.reachability, 1),
            fnum(p.freq_ghz, 2),
            fnum(p.area_mm2_32k, 2),
            p.max_fan_in.to_string(),
        ]);
    }
    format!(
        "## Figure 10: performance, reachability and area overheads\n\n{}\nPaper: CA_P 361 reach @ 2 GHz / 4.3 mm2; CA_S 936 @ 1.2 GHz / 4.6 mm2; AP 230.5 @ 0.133 GHz / 38 mm2.\n",
        t.render()
    )
}

/// Throughput scaling through replication (§5.2): "space savings can be
/// directly translated to speedup by matching against multiple NFA
/// instances" — the space-optimized mapping fits more copies of the
/// automaton in the same cache, each scanning its own stream.
pub fn scaling(config: &RunConfig) -> String {
    use cache_automaton::{CacheAutomaton, Design, Optimize};
    let mut t = Table::new([
        "Benchmark",
        "Design",
        "Partitions/instance",
        "Max instances",
        "Aggregate (Gb/s)",
        "vs 1 AP",
    ]);
    let ap_gbps = ap().throughput_gbps();
    for benchmark in [Benchmark::Snort, Benchmark::Spm, Benchmark::Bro217] {
        let w = benchmark.build(config.scale, config.seed);
        for (design, optimize) in
            [(Design::Performance, Optimize::Never), (Design::Space, Optimize::Auto)]
        {
            let Ok(program) = CacheAutomaton::builder()
                .design(design)
                .optimize(optimize)
                .build()
                .compile_nfa(&w.nfa)
            else {
                continue;
            };
            let max = program.max_instances();
            let multi = program.replicate(max).expect("max instances fit");
            t.row([
                benchmark.name().to_string(),
                format!("{design:?}"),
                program.stats().partitions_used.to_string(),
                max.to_string(),
                fnum(multi.aggregate_throughput_gbps(), 1),
                fnum(multi.aggregate_throughput_gbps() / ap_gbps, 0),
            ]);
        }
    }
    let analytic = format!(
        "## Scaling: multi-instance throughput (Section 5.2)\n\n{}\nEach instance scans an independent input stream at one symbol/cycle.\n",
        t.render()
    );
    format!("{analytic}\n{}", sharded_scaling(config))
}

/// Measured counterpart of the analytic §5.2 table: instead of assuming
/// each instance its own stream, shard ONE stream across fabric instances
/// with [`cache_automaton::Program::run_parallel`] and report both the
/// simulated makespan speedup and the measured host wall-clock of the
/// parallel driver itself.
fn sharded_scaling(config: &RunConfig) -> String {
    use cache_automaton::{CacheAutomaton, Parallelism};
    let mut t = Table::new([
        "Benchmark",
        "Shards",
        "Simulated (Gb/s)",
        "Speedup",
        "Host wall (ms)",
        "Matches",
    ]);
    for benchmark in [Benchmark::Snort, Benchmark::Spm, Benchmark::Bro217] {
        let w = benchmark.build(config.scale, config.seed);
        let input = w.input(config.input_kib * 1024, config.seed ^ 0x5ca1e);
        let Ok(program) = CacheAutomaton::new().compile_nfa(&w.nfa) else {
            continue;
        };
        let serial_cycles = program.run(&input).exec.cycles.max(1);
        for shards in [1usize, 2, 4, 8] {
            let started = std::time::Instant::now();
            let report = program
                .run_parallel(&input, Parallelism::Threads(shards))
                .expect("shard count is non-zero");
            let wall = started.elapsed();
            t.row([
                benchmark.name().to_string(),
                shards.to_string(),
                fnum(report.achieved_gbps(), 2),
                format!("{:.2}x", serial_cycles as f64 / report.exec.cycles.max(1) as f64),
                fnum(wall.as_secs_f64() * 1e3, 2),
                report.matches.len().to_string(),
            ]);
        }
    }
    format!(
        "### Sharded single-stream scaling (measured)\n\n{}\nOne input stream split into N stripes on concurrent fabric instances; \
         the boundary-state handoff keeps the match stream identical to a serial scan, \
         so the match count is constant down each benchmark's column. Speedup tracks \
         how fast carry-over state dies: SPM and Bro217 decay within a few symbols and \
         scale almost linearly, while Snort's dotstar-infixed rules hold loop states \
         live across whole stripes, so its corrections rerun everything and the \
         simulated critical path stays serial.\n",
        t.render()
    )
}

/// Headline summary: the abstract's numbers, measured.
pub fn summary(results: &[BenchResult], config: &RunConfig) -> String {
    let ap_gbps = ap().throughput_gbps();
    let p_gbps = ca_sim::design_timing(ca_sim::DesignKind::Performance).throughput_gbps();
    let s_gbps = ca_sim::design_timing(ca_sim::DesignKind::Space).throughput_gbps();
    let n = results.len().max(1) as f64;
    let avg_util_p: f64 = results.iter().map(|r| r.perf.utilization_mb).sum::<f64>() / n;
    let avg_util_s: f64 = results.iter().map(|r| r.space.utilization_mb).sum::<f64>() / n;
    let avg_energy_s: f64 = results.iter().map(|r| r.space.energy.per_symbol_nj).sum::<f64>() / n;

    // measured CPU baseline on a mid-size workload
    let (workload, input) = crate::suite::workload_with_input(Benchmark::Snort, config);
    let cpu = measure_cpu(&workload.nfa, &input);
    let cpu_measured_speedup = p_gbps / cpu.throughput_gbps().max(1e-12);

    let mut out = String::from("## Summary: headline results\n\n");
    out.push_str(&format!("- CA_P speedup over AP: {:.1}x (paper: 15x)\n", p_gbps / ap_gbps));
    out.push_str(&format!("- CA_S speedup over AP: {:.1}x (paper: 9x)\n", s_gbps / ap_gbps));
    out.push_str(&format!(
        "- CA_P speedup over x86 CPU, literature-derived: {:.0}x (paper: 3840x)\n",
        p_gbps / ap_gbps * AP_OVER_CPU
    ));
    out.push_str(&format!(
        "- CA_P speedup over x86 CPU, measured on this host (Snort, {} KiB): {:.0}x\n",
        config.input_kib, cpu_measured_speedup
    ));
    out.push_str(&format!(
        "- Average cache utilization: CA_P {avg_util_p:.2} MB (paper 1.2), CA_S {avg_util_s:.2} MB (paper 0.725)\n"
    ));
    out.push_str(&format!("- Average CA_S energy: {avg_energy_s:.2} nJ/symbol (paper 2.3)\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::run_benchmark;
    use ca_workloads::Scale;

    #[test]
    fn fig10_static_render() {
        let s = fig10();
        assert!(s.contains("Micron AP"));
        assert!(s.contains("CA_P"));
        assert!(s.contains("38.00"));
    }

    #[test]
    fn scaling_renders() {
        let config = RunConfig { scale: Scale::tiny(), input_kib: 4, seed: 3 };
        let s = scaling(&config);
        assert!(s.contains("Snort"));
        assert!(s.contains("Max instances"));
        assert!(s.contains("Aggregate"));
        // the measured sharded table rides along
        assert!(s.contains("Sharded single-stream scaling"));
        assert!(s.contains("Host wall"));
        assert!(s.contains("Speedup"));
    }

    #[test]
    fn figures_render_from_results() {
        let config = RunConfig { scale: Scale::tiny(), input_kib: 4, seed: 3 };
        let results = vec![run_benchmark(Benchmark::Levenshtein, &config)];
        assert!(fig7(&results).contains("Levenshtein"));
        assert!(fig8(&results).contains("Average"));
        assert!(fig9(&results).contains("IdealAP"));
        let s = summary(&results, &config);
        assert!(s.contains("15x"));
        assert!(s.contains("3840x"));
    }
}
