//! Experiment harness: regenerates every table and figure of the Cache
//! Automaton evaluation (Tables 1–5, Figures 7–10, headline summary).
//!
//! Use the `experiments` binary:
//!
//! ```text
//! cargo run --release -p ca-bench --bin experiments -- all
//! cargo run --release -p ca-bench --bin experiments -- table1 --scale 0.1 --kib 64
//! cargo run --release -p ca-bench --bin experiments -- fig9
//! ```
//!
//! Criterion micro-benchmarks (simulator, compiler, partitioner, engines)
//! live in `benches/` and run with `cargo bench`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod figures;
pub mod markdown;
pub mod persist;
pub mod serving;
pub mod suite;
pub mod tables;

pub use suite::{run_all, run_benchmark, BenchResult, DesignResult, RunConfig};
