//! Ablation studies for the design choices DESIGN.md calls out, plus the
//! DFA-blowup study motivating NFA-in-hardware (paper §1, §6).

use crate::markdown::{fnum, Table};
use crate::suite::RunConfig;
use ca_automata::analysis::connected_components;
use ca_automata::engine::DfaEngine;
use ca_compiler::{compile, CompilerOptions};
use ca_sim::{DesignKind, STES_PER_PARTITION};
use ca_workloads::Benchmark;

/// Packing ablation: the compiler's first-fit-decreasing packing with
/// split-residual reuse, against the paper's literal description
/// ("starting from the smallest connected component, greedily pack" =
/// next-fit ascending), and the raw lower bound.
pub fn ablation_packing(config: &RunConfig) -> String {
    let mut t = Table::new([
        "Benchmark",
        "States",
        "Lower bound",
        "Next-fit asc (paper text)",
        "FFD+residual (ours)",
        "Fill %",
    ]);
    for benchmark in
        [Benchmark::Snort, Benchmark::Dotstar, Benchmark::Bro217, Benchmark::Spm, Benchmark::ClamAv]
    {
        let w = benchmark.build(config.scale, config.seed);
        let cc = connected_components(&w.nfa);
        // next-fit ascending over whole components; oversized components
        // charged their balanced-split partition count.
        let mut sizes: Vec<usize> = cc.sizes();
        sizes.sort_unstable();
        let mut naive = 0usize;
        let mut open = 0usize;
        for s in sizes {
            if s > STES_PER_PARTITION {
                naive += s.div_ceil(STES_PER_PARTITION);
            } else if open >= s {
                open -= s;
            } else {
                naive += 1;
                open = STES_PER_PARTITION - s;
            }
        }
        let compiled = compile(&w.nfa, &CompilerOptions::for_design(DesignKind::Performance))
            .expect("fits the prototype");
        let ours = compiled.stats.partitions_used;
        let lower = w.nfa.len().div_ceil(STES_PER_PARTITION);
        t.row([
            benchmark.name().to_string(),
            w.nfa.len().to_string(),
            lower.to_string(),
            naive.to_string(),
            ours.to_string(),
            fnum(w.nfa.len() as f64 / (ours * STES_PER_PARTITION) as f64 * 100.0, 1),
        ]);
    }
    format!(
        "## Ablation: partition packing policy\n\n{}\nPartition counts; \
         lower bound = ceil(states/256) ignoring component atomicity.\n",
        t.render()
    )
}

/// Prefix-merging ablation: CA_S with and without the optimizer.
pub fn ablation_merging(config: &RunConfig) -> String {
    let mut t = Table::new([
        "Benchmark",
        "States (raw)",
        "Prefix-merged (paper)",
        "Bidir, unified codes (ext)",
        "Partitions (raw)",
        "Partitions (merged)",
        "Reduction %",
    ]);
    for benchmark in [Benchmark::Spm, Benchmark::Snort, Benchmark::Brill, Benchmark::Tcp] {
        let w = benchmark.build(config.scale, config.seed);
        let merged = w.space_optimized();
        // extension beyond the paper: suffix merging iterated with prefix
        // merging. Suffix merges require equal report codes, so this is
        // evaluated in the "any rule fired" deployment mode (all codes
        // unified) where tails across patterns are mergeable.
        let bidir = {
            let mut unified = w.nfa.clone();
            for s in unified.reporting_states() {
                unified.state_mut(s).report = Some(ca_automata::ReportCode(0));
            }
            ca_automata::optimize::merge_bidirectional(&unified).0
        };
        let opts = CompilerOptions::for_design(DesignKind::Space);
        let raw = compile(&w.nfa, &opts).expect("raw fits");
        let opt = compile(&merged, &opts).expect("merged fits");
        t.row([
            benchmark.name().to_string(),
            w.nfa.len().to_string(),
            merged.len().to_string(),
            bidir.len().to_string(),
            raw.stats.partitions_used.to_string(),
            opt.stats.partitions_used.to_string(),
            fnum((1.0 - merged.len() as f64 / w.nfa.len() as f64) * 100.0, 1),
        ]);
    }
    format!(
        "## Ablation: state merging (the CA_S flow, plus the bidirectional extension)\n\n{}",
        t.render()
    )
}

/// Floorplan ablation: mapping-aware wire delay. The paper derates every
/// design to the worst-case 1.5 mm wire; with the explicit slice floorplan,
/// compact mappings (few, central ways) see shorter routes and could clock
/// higher — quantified here.
pub fn ablation_floorplan() -> String {
    use ca_sim::{CacheGeometry, Floorplan, PartitionLocation, TimingParams};
    let mut t = Table::new([
        "Ways occupied",
        "Worst wire (mm)",
        "G-stage (ps)",
        "Max freq (GHz)",
        "Bottleneck",
    ]);
    let fp = Floorplan::default();
    let geom = CacheGeometry::for_design(DesignKind::Performance, 1);
    let params = TimingParams::default();
    for ways in [1usize, 2, 4, 8] {
        let occupied: Vec<PartitionLocation> = (0..ways * geom.partitions_per_way())
            .map(|i| PartitionLocation::from_index(&geom, i))
            .collect();
        let timing = fp.mapping_timing(DesignKind::Performance, &params, &occupied);
        let wire = fp.worst_distance_mm(&geom, &occupied);
        let bottleneck = if timing.state_match_ps >= timing.gswitch_ps.max(timing.lswitch_ps) {
            "state-match"
        } else {
            "interconnect"
        };
        t.row([
            ways.to_string(),
            fnum(wire, 2),
            fnum(timing.gswitch_ps, 0),
            fnum(timing.max_freq_ghz(), 2),
            bottleneck.to_string(),
        ]);
    }
    format!(
        "## Ablation: floorplan-aware wire delay (CA_P, center-out way allocation)\n\n{}\
         \nState-match (438 ps) dominates until the mapping spans most of the slice,\n\
         confirming the paper's fixed 1.5 mm derating is conservative but not limiting.\n",
        t.render()
    )
}

/// Stride study (extension): the Impala-style 4-bit symbol transform
/// shrinks STE columns from 256 to 32 rows (one column-mux chunk instead
/// of four → shallower state-match), at the cost of state inflation.
pub fn ablation_stride(config: &RunConfig) -> String {
    use ca_automata::stride::to_nibble_nfa_with_stats;
    let mut t = Table::new([
        "Benchmark (5%)",
        "States (8-bit)",
        "States (4-bit)",
        "Inflation x",
        "Max rectangles",
        "Net capacity cost x",
    ]);
    for benchmark in [
        Benchmark::ExactMatch,
        Benchmark::Ranges1,
        Benchmark::Snort,
        Benchmark::ClamAv,
        Benchmark::Protomata,
    ] {
        let w = benchmark.build(ca_workloads::Scale(0.05), config.seed);
        let (_, stats) = to_nibble_nfa_with_stats(&w.nfa);
        // columns are 8x shorter (32 rows vs 256), so the net SRAM cost is
        // inflation / 8.
        t.row([
            benchmark.name().to_string(),
            stats.states_before.to_string(),
            stats.states_after.to_string(),
            fnum(stats.inflation(), 2),
            stats.max_rectangles.to_string(),
            fnum(stats.inflation() / 8.0, 2),
        ]);
    }
    format!(
        "## Study: 4-bit stride transform (Impala-style extension)\n\n{}\
         \nInflation of ~2x against 8x-shorter columns nets a 3-4x denser SRAM image;\n\
         the state-match stage would read one column-mux chunk instead of four.\n",
        t.render()
    )
}

/// DFA-blowup study: lazy determinization of the benchmark NFAs against a
/// state budget — the reason compute-centric engines restrict themselves
/// to DFAs *or* pay NFA interpretation costs, and the motivation for
/// hardware NFA execution (§1, §6).
pub fn dfa_blowup(config: &RunConfig) -> String {
    let mut t = Table::new([
        "Workload",
        "NFA states",
        "NFA cache (KB)",
        "DFA states (lazy)",
        "DFA table (MB)",
        "Budget hit?",
    ]);
    let budget = 1 << 15;
    // DFA transition-table bytes: 256 entries x 4 B per materialized state.
    let dfa_mb = |states: usize| states as f64 * 256.0 * 4.0 / 1048576.0;
    // NFA cache bytes: 256-bit STE columns (what the Cache Automaton loads).
    let nfa_kb = |states: usize| states as f64 * 32.0 / 1024.0;

    for benchmark in
        [Benchmark::ExactMatch, Benchmark::Dotstar06, Benchmark::Dotstar09, Benchmark::Snort]
    {
        // Lazy determinization over an adversarial (wall-to-wall fragments)
        // trace; the visited-subset count is a *lower bound* on the real
        // DFA size.
        let w = benchmark.build(ca_workloads::Scale(0.05), config.seed);
        let input = w.adversarial_input(96 * 1024, config.seed + 1);
        let mut dfa = DfaEngine::with_limit(&w.nfa, budget);
        let overflowed = dfa.try_run(&input).is_err();
        let dfa_states = dfa.materialized_states();
        t.row([
            format!("{} (5%)", benchmark.name()),
            w.nfa.len().to_string(),
            fnum(nfa_kb(w.nfa.len()), 1),
            format!("{dfa_states}{}", if overflowed { "+" } else { "" }),
            fnum(dfa_mb(dfa_states), 2),
            if overflowed { "YES".to_string() } else { "no".to_string() },
        ]);
    }
    // The classic exponential case: bounded wildcard windows, as in ClamAV
    // signatures (`a.{14}b`) — every combination of in-flight windows is a
    // distinct subset.
    let patterns: Vec<String> =
        (0..20).map(|i| format!("{}.{{14}}b", (b'a' + i % 3) as char)).collect();
    let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
    let nfa = ca_automata::regex::compile_patterns(&refs).expect("compiles");
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(config.seed)
    };
    let input: Vec<u8> = (0..96 * 1024)
        .map(|_| {
            use rand::Rng;
            *[b'a', b'b', b'c', b'x'].get(rng.gen_range(0..4usize)).expect("in range")
        })
        .collect();
    let mut dfa = DfaEngine::with_limit(&nfa, budget);
    let overflowed = dfa.try_run(&input).is_err();
    t.row([
        "counting windows (ClamAV-style)".to_string(),
        nfa.len().to_string(),
        fnum(nfa_kb(nfa.len()), 1),
        format!("{}{}", dfa.materialized_states(), if overflowed { "+" } else { "" }),
        fnum(dfa_mb(dfa.materialized_states()), 2),
        if overflowed { "YES".to_string() } else { "no".to_string() },
    ]);
    format!(
        "## Study: DFA determinization cost (adversarial 96 KiB traces, {budget}-state budget)\n\n{}\
         \nEven where subsets stay near-linear, the DFA transition table dwarfs the NFA's\n\
         cache image; counting windows (ClamAV-style gaps) blow up outright — the paper's\n\
         premise for executing NFAs directly in hardware.\n",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_workloads::Scale;

    fn tiny() -> RunConfig {
        RunConfig { scale: Scale::tiny(), input_kib: 4, seed: 3 }
    }

    #[test]
    fn packing_ablation_renders() {
        let s = ablation_packing(&tiny());
        assert!(s.contains("Snort"));
        assert!(s.contains("FFD"));
    }

    #[test]
    fn merging_ablation_renders() {
        let s = ablation_merging(&tiny());
        assert!(s.contains("SPM"));
        assert!(s.contains("Reduction"));
    }

    #[test]
    fn floorplan_ablation_renders() {
        let s = ablation_floorplan();
        assert!(s.contains("Worst wire"));
        assert!(s.contains("state-match"));
    }

    #[test]
    fn stride_study_renders() {
        let s = ablation_stride(&tiny());
        assert!(s.contains("Inflation"));
        assert!(s.contains("Snort"));
    }

    #[test]
    fn dfa_study_renders() {
        let s = dfa_blowup(&tiny());
        assert!(s.contains("DFA table"));
        assert!(s.contains("Dotstar09"));
        // the counting-window workload must actually blow up
        assert!(s.contains("counting windows"));
        assert!(s.contains("YES"));
    }
}
