//! Minimal Markdown/console table renderer for the experiment harness.

/// A simple column-aligned table that renders to GitHub-flavoured Markdown.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as Markdown with aligned pipes.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, w) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.header);
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with `digits` decimals, trimming to a compact cell.
pub fn fnum(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name "));
        assert!(lines[1].starts_with("|---"));
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn rows_padded_to_header() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("| 1 |"));
    }

    #[test]
    fn fnum_digits() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }
}
