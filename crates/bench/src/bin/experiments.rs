//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments <target> [--scale F] [--kib N] [--seed N]
//!
//! targets: all | table1 | table2 | table3 | table4 | table5
//!        | fig7 | fig8 | fig9 | fig10 | serving | serving-daemon
//!        | warm-start | summary
//! ```
//!
//! `--scale 1.0` (default) builds the paper-sized automata; `--kib` sets
//! the input-trace length per benchmark (default 256 KiB; the paper used
//! 10 MB, i.e. `--kib 10240` — shapes stabilize well before that).

use ca_bench::{figures, suite, tables, RunConfig};
use ca_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut target = String::from("all");
    let mut config = RunConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                config.scale = Scale(parse(&args, i, "--scale"));
            }
            "--kib" => {
                i += 1;
                config.input_kib = parse::<usize>(&args, i, "--kib");
            }
            "--seed" => {
                i += 1;
                config.seed = parse::<u64>(&args, i, "--seed");
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            t => target = t.to_string(),
        }
        i += 1;
    }

    let needs_suite =
        matches!(target.as_str(), "all" | "table1" | "fig7" | "fig8" | "fig9" | "summary");
    let results = if needs_suite { suite::run_all(&config) } else { Vec::new() };

    let mut sections: Vec<String> = Vec::new();
    match target.as_str() {
        "all" => {
            sections.push(tables::table1(&results));
            sections.push(tables::table2());
            sections.push(tables::table3());
            sections.push(tables::table4());
            sections.push(tables::table5(&config));
            sections.push(figures::fig7(&results));
            sections.push(figures::fig8(&results));
            sections.push(figures::fig9(&results));
            sections.push(figures::fig10());
            sections.push(ca_bench::ablation::ablation_packing(&config));
            sections.push(ca_bench::ablation::ablation_merging(&config));
            sections.push(ca_bench::ablation::ablation_floorplan());
            sections.push(ca_bench::ablation::ablation_stride(&config));
            sections.push(ca_bench::ablation::dfa_blowup(&config));
            sections.push(figures::scaling(&config));
            sections.push(ca_bench::serving::multistream(&config));
            sections.push(ca_bench::serving::daemon_throughput(&config));
            sections.push(ca_bench::persist::warm_start(&config));
            sections.push(figures::summary(&results, &config));
        }
        "table1" => sections.push(tables::table1(&results)),
        "table2" => sections.push(tables::table2()),
        "table3" => sections.push(tables::table3()),
        "table4" => sections.push(tables::table4()),
        "table5" => sections.push(tables::table5(&config)),
        "fig7" => sections.push(figures::fig7(&results)),
        "fig8" => sections.push(figures::fig8(&results)),
        "fig9" => sections.push(figures::fig9(&results)),
        "fig10" => sections.push(figures::fig10()),
        "scaling" => sections.push(figures::scaling(&config)),
        "serving" | "multistream" => sections.push(ca_bench::serving::multistream(&config)),
        "serving-daemon" | "daemon" => {
            sections.push(ca_bench::serving::daemon_throughput(&config));
        }
        "warm-start" | "persist" => sections.push(ca_bench::persist::warm_start(&config)),
        "ablation" => {
            sections.push(ca_bench::ablation::ablation_packing(&config));
            sections.push(ca_bench::ablation::ablation_merging(&config));
            sections.push(ca_bench::ablation::ablation_floorplan());
            sections.push(ca_bench::ablation::ablation_stride(&config));
            sections.push(ca_bench::ablation::dfa_blowup(&config));
        }
        "summary" => sections.push(figures::summary(&results, &config)),
        other => {
            eprintln!(
                "unknown target '{other}'; expected all|table1..table5|fig7..fig10|ablation|scaling|serving|serving-daemon|warm-start|summary"
            );
            std::process::exit(2);
        }
    }
    println!(
        "# Cache Automaton experiments (scale {}, {} KiB traces, seed {})\n",
        config.scale.0, config.input_kib, config.seed
    );
    for s in sections {
        println!("{s}");
    }
}

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}
