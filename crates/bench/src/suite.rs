//! Shared experiment driver: builds every benchmark, compiles both designs,
//! runs the fabric, and collects the measurements the tables and figures
//! are assembled from.

use ca_automata::analysis::connected_components;
use ca_baselines::ApModel;
use ca_compiler::{compile, CompileError, CompilerOptions};
use ca_sim::{
    design_timing, energy_report, ideal_ap_per_symbol_nj, DesignKind, EnergyParams, EnergyReport,
    ExecStats, Fabric,
};
use ca_telemetry::{SpanGuard, StderrLogger, Telemetry};
use ca_workloads::{Benchmark, Scale, Workload};

/// Experiment configuration shared by all tables/figures.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Workload scale (1.0 = the paper's Table 1 sizes).
    pub scale: Scale,
    /// Input trace length in KiB (the paper used 10 MB traces; the shapes
    /// stabilize well before that).
    pub input_kib: usize,
    /// Seed for workload synthesis and placement.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig { scale: Scale::full(), input_kib: 256, seed: 2017 }
    }
}

/// Measurements of one benchmark on one design point.
#[derive(Debug, Clone)]
pub struct DesignResult {
    /// States of the mapped automaton.
    pub states: usize,
    /// Connected components.
    pub ccs: usize,
    /// Largest component.
    pub largest_cc: usize,
    /// Partitions allocated.
    pub partitions: usize,
    /// Cache utilization in MB.
    pub utilization_mb: f64,
    /// Fabric activity statistics over the input trace.
    pub stats: ExecStats,
    /// Cache Automaton energy report.
    pub energy: EnergyReport,
    /// Ideal-AP energy per symbol under the same mapping (nJ).
    pub ideal_ap_nj: f64,
}

/// All measurements of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Which benchmark.
    pub benchmark: Benchmark,
    /// Performance-optimized design (CA_P on the baseline automaton).
    pub perf: DesignResult,
    /// Space-optimized design (CA_S on the merged automaton).
    pub space: DesignResult,
    /// `true` if the merged automaton could not be routed and CA_S fell
    /// back to the baseline automaton (recorded in EXPERIMENTS.md).
    pub space_fallback: bool,
}

fn measure(
    nfa: &ca_automata::HomNfa,
    design: DesignKind,
    input: &[u8],
    seed: u64,
) -> Result<DesignResult, CompileError> {
    let cc = connected_components(nfa);
    let opts = CompilerOptions { design, seed, ..Default::default() };
    let compiled = compile(nfa, &opts)?;
    let mut fabric = Fabric::new(&compiled.bitstream).expect("compiled bitstream valid");
    let exec = fabric.run(input);
    let freq = design_timing(design).operating_freq_ghz();
    let params = EnergyParams::default();
    let energy = energy_report(&exec.stats, design, &params, freq);
    Ok(DesignResult {
        states: nfa.len(),
        ccs: cc.len(),
        largest_cc: cc.largest(),
        partitions: compiled.stats.partitions_used,
        utilization_mb: compiled.stats.utilization_mb(),
        ideal_ap_nj: ideal_ap_per_symbol_nj(&exec.stats, &params),
        stats: exec.stats,
        energy,
    })
}

/// Builds, compiles and runs one benchmark on both designs.
///
/// # Panics
///
/// Panics if the baseline automaton cannot be compiled at all (the
/// configured geometry is the paper's 8-slice prototype, which fits every
/// Table 1 benchmark).
pub fn run_benchmark(benchmark: Benchmark, config: &RunConfig) -> BenchResult {
    let workload = benchmark.build(config.scale, config.seed);
    let input = workload.input(config.input_kib * 1024, config.seed + 1);

    let perf = measure(&workload.nfa, DesignKind::Performance, &input, config.seed)
        .unwrap_or_else(|e| panic!("{benchmark}: CA_P compile failed: {e}"));

    let merged = workload.space_optimized();
    let (space, space_fallback) = match measure(&merged, DesignKind::Space, &input, config.seed) {
        Ok(r) => (r, false),
        Err(_) => {
            // Some aggressively merged automata (EntityResolution) exceed a
            // slice's G4 routing domain; fall back to the baseline automaton
            // on the space design, as §4 of EXPERIMENTS.md documents.
            let r = measure(&workload.nfa, DesignKind::Space, &input, config.seed)
                .unwrap_or_else(|e| panic!("{benchmark}: CA_S fallback failed: {e}"));
            (r, true)
        }
    };
    BenchResult { benchmark, perf, space, space_fallback }
}

/// Runs the whole suite, announcing progress on stderr (the historical
/// behaviour; delegates to [`run_all_with`] with a [`StderrLogger`] sink).
pub fn run_all(config: &RunConfig) -> Vec<BenchResult> {
    run_all_with(config, &Telemetry::new(StderrLogger))
}

/// Runs the whole suite, routing progress through a telemetry sink: one
/// lazily-formatted log line and one `bench.benchmark` wall-clock span
/// (labelled by suite index) per benchmark. With a disabled handle the
/// suite runs silently at zero instrumentation cost.
pub fn run_all_with(config: &RunConfig, telemetry: &Telemetry) -> Vec<BenchResult> {
    Benchmark::all()
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            telemetry.log(|| format!("[suite] running {b} ..."));
            let span = SpanGuard::start(telemetry, "bench.benchmark", i as u64);
            let result = run_benchmark(b, config);
            span.finish();
            result
        })
        .collect()
}

/// A reference to the AP model shared by several tables.
pub fn ap() -> ApModel {
    ApModel::default()
}

/// Convenience accessor: a [`Workload`] and its input for ad-hoc harness
/// use (Table 5 uses Dotstar09 specifically).
pub fn workload_with_input(benchmark: Benchmark, config: &RunConfig) -> (Workload, Vec<u8>) {
    let w = benchmark.build(config.scale, config.seed);
    let input = w.input(config.input_kib * 1024, config.seed + 1);
    (w, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> RunConfig {
        RunConfig { scale: Scale::tiny(), input_kib: 8, seed: 5 }
    }

    #[test]
    fn run_one_benchmark_end_to_end() {
        let r = run_benchmark(Benchmark::ExactMatch, &tiny_config());
        assert!(r.perf.states > 0);
        assert!(r.perf.partitions > 0);
        assert!(r.perf.utilization_mb > 0.0);
        assert_eq!(r.perf.stats.symbols, 8 * 1024);
        assert!(r.space.states <= r.perf.states);
        assert!(!r.space_fallback);
    }

    #[test]
    fn energy_is_populated() {
        let r = run_benchmark(Benchmark::Fermi, &tiny_config());
        assert!(r.perf.energy.per_symbol_nj > 0.0);
        assert!(r.perf.ideal_ap_nj > r.perf.energy.per_symbol_nj, "ideal AP should cost more");
    }

    #[test]
    fn space_design_saves_for_mergeable_benchmark() {
        let r = run_benchmark(Benchmark::Spm, &tiny_config());
        assert!(r.space.states < r.perf.states);
        assert!(r.space.utilization_mb <= r.perf.utilization_mb);
    }
}
