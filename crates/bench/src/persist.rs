//! Warm-start study for the persistent artifact cache: how much of a
//! process's setup cost the disk tier removes.
//!
//! The cold column compiles a benchmark rule set from scratch through a
//! `CacheAutomaton` whose disk tier points at an empty directory (so the
//! time includes the write-through). The warm column builds a *fresh*
//! automaton — new memory tier, exactly what a second process sees — over
//! the same directory and "compiles" the same rules again, which resolves
//! to a disk load. A `MemoryRecorder` asserts the warm path never ran a
//! single compiler pass, and both programs must scan a shared input to
//! bit-identical reports before the timings are tabulated.
//!
//! The daemon half replays the fleet scenario from the issue: a serving
//! daemon whose memory tier is disabled (capacity 0) RELOADs its
//! unchanged rules. The generation bumps, the program is bound through
//! the disk tier, and the compile-pass counter stays flat.
//!
//! The fleet half goes one machine further: a [`CacheServer`] peer backs
//! the remote tier, member A compiles once and pushes the artifact, and a
//! machine-cold member B — fresh cache directory, fresh process state —
//! warm-starts entirely over the wire with zero compiler passes and a
//! bit-identical scan report, backfilling its own disk on the way.

use std::sync::Arc;
use std::time::Instant;

use ca_workloads::Benchmark;
use cache_automaton::{
    CacheAutomaton, CacheServer, Client, Daemon, DaemonOptions, Design, Telemetry,
};

use crate::markdown::{fnum, Table};
use crate::suite::RunConfig;

/// A unique scratch directory for one study run.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ca-bench-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Renders the warm-start study over the two largest benchmark rule sets
/// plus the daemon-reload scenario.
pub fn warm_start(config: &RunConfig) -> String {
    let mut t = Table::new([
        "Benchmark",
        "States",
        "Cold compile (ms)",
        "Warm start (ms)",
        "Setup reduction",
        "Report parity",
    ]);
    let input_bytes = (config.input_kib * 1024).max(4 * 1024);
    // The two largest rule sets by state count (Dotstar, SPM) plus the two
    // classic real-world sets (Snort, ClamAV), compiled with the paper's
    // CA_S deployment flow — space optimizer + partitioner — which is
    // where setup cost actually lives (the motivation's "compiling a
    // large automaton takes seconds").
    for benchmark in [Benchmark::Dotstar, Benchmark::Spm, Benchmark::Snort, Benchmark::ClamAv] {
        let w = benchmark.build(config.scale, config.seed);
        let dir = scratch_dir(benchmark.name());

        // Cold: compile + write-through, timed end to end.
        let cold_ca = CacheAutomaton::builder().design(Design::Space).disk_cache(&dir).build();
        let started = Instant::now();
        let Ok(cold_program) = cold_ca.compile_nfa(&w.nfa) else {
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        };
        let cold_ms = started.elapsed().as_secs_f64() * 1e3;

        // Warm: a fresh automaton over the same directory — the second
        // process. Telemetry proves no compiler pass ran.
        let recorder = Arc::new(cache_automaton::telemetry::MemoryRecorder::new());
        let warm_ca = CacheAutomaton::builder()
            .design(Design::Space)
            .disk_cache(&dir)
            .telemetry_handle(Telemetry::from_arc(recorder.clone()))
            .build();
        let started = Instant::now();
        let warm_program = warm_ca.compile_nfa(&w.nfa).expect("warm start loads what cold stored");
        let warm_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            recorder.counter("compile.compilations"),
            0,
            "warm start must not reach the compiler"
        );
        assert_eq!(recorder.counter("cache.disk.hits"), 1);
        assert_eq!(
            warm_program.to_bytes(),
            cold_program.to_bytes(),
            "disk round trip is bit-identical"
        );

        // Both programs scan the same input to the same report.
        let input = w.input(input_bytes, config.seed ^ 0x9a51);
        let cold_report = cold_program.run(&input);
        let warm_report = warm_program.run(&input);
        assert_eq!(cold_report.matches, warm_report.matches, "match parity");
        assert_eq!(cold_report.exec, warm_report.exec, "accounting parity");

        t.row([
            benchmark.name().to_string(),
            cold_program.stats().states.to_string(),
            fnum(cold_ms, 2),
            fnum(warm_ms, 2),
            format!("{:.0}x", cold_ms / warm_ms.max(1e-9)),
            format!("{} matches, bit-identical", cold_report.matches.len()),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Fleet reload: a daemon with no in-memory tier RELOADs unchanged
    // rules; the generation bumps while the compile counter stays flat —
    // the new generation was bound straight from the disk tier.
    let w = Benchmark::Snort.build(config.scale, config.seed);
    let rules = cache_automaton::automata::anml::to_anml(&w.nfa, "persist");
    let dir = scratch_dir("daemon");
    let recorder = Arc::new(cache_automaton::telemetry::MemoryRecorder::new());
    let ca = CacheAutomaton::builder()
        .cache_capacity(0)
        .disk_cache(&dir)
        .telemetry_handle(Telemetry::from_arc(recorder.clone()))
        .build();
    let daemon = Daemon::bind(&ca, &rules, "127.0.0.1:0", DaemonOptions::default())
        .expect("daemon binds locally");
    let compiles_before = recorder.counter("compile.compilations");
    let started = Instant::now();
    let mut client = Client::connect(&daemon.local_addr()).expect("local connect");
    let generation = client.reload(None).expect("reload unchanged rules");
    let reload_ms = started.elapsed().as_secs_f64() * 1e3;
    drop(client);
    daemon.shutdown().expect("daemon joins cleanly");
    assert_eq!(generation, 1, "reload bumped the generation");
    let reload_compiles = recorder.counter("compile.compilations") - compiles_before;
    assert_eq!(reload_compiles, 0, "warm reload must not reach the compiler");
    let disk_hits = recorder.counter("cache.disk.hits");
    let _ = std::fs::remove_dir_all(&dir);

    // Fleet cache: the remote tier against a real peer. Member A pays the
    // compile and pushes; a machine-cold member B (fresh directory — a
    // different machine, not just a different process) warm-starts
    // through the peer alone.
    let mut fleet = Table::new([
        "Benchmark",
        "A compile+push (ms)",
        "B fleet warm start (ms)",
        "B compiler passes",
        "Report parity",
    ]);
    let peer_dir = scratch_dir("peer");
    let server = CacheServer::bind("127.0.0.1:0", &peer_dir).expect("cache peer binds locally");
    for benchmark in [Benchmark::Snort, Benchmark::ClamAv] {
        let w = benchmark.build(config.scale, config.seed);
        let dir_a = scratch_dir(&format!("fleet-a-{}", benchmark.name()));
        let dir_b = scratch_dir(&format!("fleet-b-{}", benchmark.name()));

        let a = CacheAutomaton::builder()
            .design(Design::Space)
            .disk_cache(&dir_a)
            .remote_cache(server.local_addr())
            .build();
        let started = Instant::now();
        let Ok(program_a) = a.compile_nfa(&w.nfa) else {
            let _ = std::fs::remove_dir_all(&dir_a);
            let _ = std::fs::remove_dir_all(&dir_b);
            continue;
        };
        let push_ms = started.elapsed().as_secs_f64() * 1e3;

        let recorder = Arc::new(cache_automaton::telemetry::MemoryRecorder::new());
        let b = CacheAutomaton::builder()
            .design(Design::Space)
            .disk_cache(&dir_b)
            .remote_cache(server.local_addr())
            .telemetry_handle(Telemetry::from_arc(recorder.clone()))
            .build();
        let started = Instant::now();
        let program_b = b.compile_nfa(&w.nfa).expect("fleet warm start loads from the peer");
        let fleet_ms = started.elapsed().as_secs_f64() * 1e3;
        let b_compiles = recorder.counter("compile.compilations");
        assert_eq!(b_compiles, 0, "fleet warm start must not reach the compiler");
        assert_eq!(recorder.counter("cache.remote.hits"), 1, "the artifact came over the wire");

        let input = w.input(input_bytes, config.seed ^ 0x9a51);
        let report_a = program_a.run(&input);
        let report_b = program_b.run(&input);
        assert_eq!(report_a.matches, report_b.matches, "fleet match parity");
        assert_eq!(report_a.exec, report_b.exec, "fleet accounting parity");

        fleet.row([
            benchmark.name().to_string(),
            fnum(push_ms, 2),
            fnum(fleet_ms, 2),
            b_compiles.to_string(),
            format!("{} matches, bit-identical", report_b.matches.len()),
        ]);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
    let peer_stats = server.stats();
    server.shutdown().expect("cache peer joins cleanly");
    let _ = std::fs::remove_dir_all(&peer_dir);

    format!(
        "## Persistence: warm starts from the disk artifact tier\n\n{}\nCold compiles the \
         rule set from scratch through the CA_S deployment flow (space optimizer + \
         partitioner — where multi-second setup cost lives) with the disk tier attached; \
         the time includes the write-through. Warm builds a brand-new `CacheAutomaton` \
         over the same cache directory — a second process — and resolves the same compile \
         from disk. The warm path's telemetry is asserted to contain zero `compile.pass.*` \
         work, and both programs scan the same trace to bit-identical \
         reports.\n\nDaemon fleet reload: a \
         daemon with its in-memory tier disabled RELOADed unchanged Snort rules in {} ms — \
         generation 0 → {generation}, {reload_compiles} compiler passes, {disk_hits} disk \
         hit(s). A warm fleet rebinds a generation without compiling.\n\n### Fleet cache: \
         warm starts through a cache peer\n\n{}\nMember A compiles with its disk tier plus \
         a remote tier pointed at a live `cactl cache-serve` peer; the artifact is pushed \
         over CACHE_PUT. Member B is machine-cold — an empty, different cache directory — \
         and resolves the same compile entirely over the wire: zero compiler passes, \
         bit-identical scan reports, and the fetched artifact backfills B's own disk. Peer \
         counters for the study: {} hits, {} misses, {} puts, {} bytes served.\n",
        t.render(),
        fnum(reload_ms, 2),
        fleet.render(),
        peer_stats.hits,
        peer_stats.misses,
        peer_stats.puts,
        peer_stats.bytes_served,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_workloads::Scale;

    #[test]
    fn warm_start_study_renders_with_parity() {
        let config = RunConfig { scale: Scale::tiny(), input_kib: 4, seed: 5 };
        let section = warm_start(&config);
        assert!(section.contains("## Persistence"));
        // Two benchmark rows plus header and separator.
        assert!(section.matches("\n|").count() >= 4);
        assert!(section.contains("generation 0 → 1"));
        assert!(section.contains("0 compiler passes"));
        assert!(section.contains("### Fleet cache"));
        assert!(section.contains("2 puts"), "both fleet benchmarks pushed to the peer");
    }
}
