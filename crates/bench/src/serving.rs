//! Multi-stream serving throughput: a [`cache_automaton::ScanPool`]
//! multiplexing K logical streams over a bounded fleet of recycled fabrics,
//! measured against the obvious baseline of K sequential
//! [`cache_automaton::Program::run`] calls (each of which builds a fresh
//! fabric).
//!
//! The study doubles as a differential check: every pooled stream's report
//! must be bit-identical to the sequential run over the same bytes, so a
//! scheduling bug shows up as a hard panic rather than a skewed number.

use std::time::Instant;

use ca_workloads::Benchmark;
use cache_automaton::{CacheAutomaton, Optimize, PoolOptions, Program, RunReport, ScanPool};

use crate::markdown::{fnum, Table};
use crate::suite::RunConfig;

/// Chunk size used when feeding pooled streams — matches the 64 KiB reads
/// `cactl mux` issues against real files.
const FEED_CHUNK: usize = 64 << 10;

/// Renders the multi-stream serving study: streams × workers aggregate
/// throughput of a `ScanPool` versus K sequential `Program::run` calls over
/// the same inputs. Total bytes are held constant across stream counts so
/// the columns compare like for like.
pub fn multistream(config: &RunConfig) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Streams",
        "Workers",
        "Total KiB",
        "Sequential (ms)",
        "Pool (ms)",
        "Speedup",
        "Matches",
    ]);
    let total_bytes = (config.input_kib * 1024).max(64 * 1024);
    for benchmark in [Benchmark::Snort, Benchmark::Spm] {
        let w = benchmark.build(config.scale, config.seed);
        let Ok(program) =
            CacheAutomaton::builder().optimize(Optimize::Never).build().compile_nfa(&w.nfa)
        else {
            continue;
        };
        for streams in [1usize, 4, 16, 64] {
            let per_stream = (total_bytes / streams).max(1);
            let inputs: Vec<Vec<u8>> = (0..streams)
                .map(|i| w.input(per_stream, config.seed ^ 0x5e7e ^ i as u64))
                .collect();

            let started = Instant::now();
            let baseline: Vec<RunReport> = inputs.iter().map(|input| program.run(input)).collect();
            let sequential = started.elapsed().as_secs_f64() * 1e3;
            let matches: usize = baseline.iter().map(|r| r.matches.len()).sum();

            for workers in [1usize, 2, 4] {
                let pooled = timed_pool(&program, &inputs, workers);
                for (got, want) in pooled.1.iter().zip(&baseline) {
                    assert_eq!(got.matches, want.matches, "pooled stream diverged from serial");
                    assert_eq!(got.exec, want.exec, "pooled accounting diverged from serial");
                }
                t.row([
                    benchmark.name().to_string(),
                    streams.to_string(),
                    workers.to_string(),
                    (total_bytes / 1024).to_string(),
                    fnum(sequential, 2),
                    fnum(pooled.0, 2),
                    format!("{:.2}x", sequential / pooled.0.max(1e-9)),
                    matches.to_string(),
                ]);
            }
        }
    }
    format!(
        "## Serving: multi-stream aggregate throughput (ScanPool)\n\n{}\nEach row scans \
         the same total bytes split across K independent streams. The sequential column \
         runs the K scans back to back with `Program::run` (a fresh fabric per call); the \
         pool column multiplexes the K streams over N worker threads that recycle a \
         bounded fleet of fabrics with `Fabric::reset`. Per-stream reports are asserted \
         bit-identical to the sequential scans before the timings are tabulated.\n",
        t.render()
    )
}

/// Feeds every input through a fresh pool round-robin (the service-like
/// access pattern: no stream is fully buffered before the next gets CPU)
/// and returns (wall-clock ms, per-stream reports in input order).
fn timed_pool(program: &Program, inputs: &[Vec<u8>], workers: usize) -> (f64, Vec<RunReport>) {
    let started = Instant::now();
    let pool = ScanPool::new(
        program,
        PoolOptions { workers, max_fabrics: workers, ..PoolOptions::default() },
    )
    .expect("pool options are valid");
    let mut handles: Vec<_> =
        inputs.iter().map(|_| pool.open_stream().expect("pool is running")).collect();
    let mut offset = 0;
    loop {
        let mut fed_any = false;
        for (handle, input) in handles.iter_mut().zip(inputs) {
            if offset < input.len() {
                let end = (offset + FEED_CHUNK).min(input.len());
                handle.feed(&input[offset..end]).expect("stream is open");
                fed_any = true;
            }
        }
        if !fed_any {
            break;
        }
        offset += FEED_CHUNK;
    }
    let reports: Vec<RunReport> =
        handles.into_iter().map(|h| h.finish().expect("stream drains cleanly")).collect();
    pool.shutdown().expect("workers join cleanly");
    (started.elapsed().as_secs_f64() * 1e3, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_workloads::Scale;

    #[test]
    fn multistream_study_renders_and_agrees_with_serial() {
        let config = RunConfig { scale: Scale::tiny(), input_kib: 8, seed: 5 };
        let section = multistream(&config);
        assert!(section.contains("## Serving"));
        // 2 benchmarks x 4 stream counts x 3 worker counts of data rows,
        // plus header, separator, and the trailing prose.
        assert!(section.matches("\n|").count() >= 24);
    }
}
