//! Multi-stream serving throughput: a [`cache_automaton::ScanPool`]
//! multiplexing K logical streams over a bounded fleet of recycled fabrics,
//! measured against the obvious baseline of K sequential
//! [`cache_automaton::Program::run`] calls (each of which builds a fresh
//! fabric).
//!
//! The study doubles as a differential check: every pooled stream's report
//! must be bit-identical to the sequential run over the same bytes, so a
//! scheduling bug shows up as a hard panic rather than a skewed number.

use std::time::Instant;

use ca_workloads::Benchmark;
use cache_automaton::{
    CacheAutomaton, Client, Daemon, DaemonOptions, Optimize, PoolOptions, Program, RunReport,
    ScanPool,
};

use crate::markdown::{fnum, Table};
use crate::suite::RunConfig;

/// Chunk size used when feeding pooled streams — matches the 64 KiB reads
/// `cactl mux` issues against real files.
const FEED_CHUNK: usize = 64 << 10;

/// Renders the multi-stream serving study: streams × workers aggregate
/// throughput of a `ScanPool` versus K sequential `Program::run` calls over
/// the same inputs. Total bytes are held constant across stream counts so
/// the columns compare like for like.
pub fn multistream(config: &RunConfig) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Streams",
        "Workers",
        "Total KiB",
        "Sequential (ms)",
        "Pool (ms)",
        "Speedup",
        "Matches",
    ]);
    let total_bytes = (config.input_kib * 1024).max(64 * 1024);
    for benchmark in [Benchmark::Snort, Benchmark::Spm] {
        let w = benchmark.build(config.scale, config.seed);
        let Ok(program) =
            CacheAutomaton::builder().optimize(Optimize::Never).build().compile_nfa(&w.nfa)
        else {
            continue;
        };
        for streams in [1usize, 4, 16, 64] {
            let per_stream = (total_bytes / streams).max(1);
            let inputs: Vec<Vec<u8>> = (0..streams)
                .map(|i| w.input(per_stream, config.seed ^ 0x5e7e ^ i as u64))
                .collect();

            let started = Instant::now();
            let baseline: Vec<RunReport> = inputs.iter().map(|input| program.run(input)).collect();
            let sequential = started.elapsed().as_secs_f64() * 1e3;
            let matches: usize = baseline.iter().map(|r| r.matches.len()).sum();

            for workers in [1usize, 2, 4] {
                let pooled = timed_pool(&program, &inputs, workers);
                for (got, want) in pooled.1.iter().zip(&baseline) {
                    assert_eq!(got.matches, want.matches, "pooled stream diverged from serial");
                    assert_eq!(got.exec, want.exec, "pooled accounting diverged from serial");
                }
                t.row([
                    benchmark.name().to_string(),
                    streams.to_string(),
                    workers.to_string(),
                    (total_bytes / 1024).to_string(),
                    fnum(sequential, 2),
                    fnum(pooled.0, 2),
                    format!("{:.2}x", sequential / pooled.0.max(1e-9)),
                    matches.to_string(),
                ]);
            }
        }
    }
    format!(
        "## Serving: multi-stream aggregate throughput (ScanPool)\n\n{}\nEach row scans \
         the same total bytes split across K independent streams. The sequential column \
         runs the K scans back to back with `Program::run` (a fresh fabric per call); the \
         pool column multiplexes the K streams over N worker threads that recycle a \
         bounded fleet of fabrics with `Fabric::reset`. Per-stream reports are asserted \
         bit-identical to the sequential scans before the timings are tabulated.\n",
        t.render()
    )
}

/// Renders the serving-daemon study: the same round-robin multi-stream
/// scan driven in-process through a [`ScanPool`] versus over the wire
/// protocol through a [`Daemon`], on both transports. The gap between the
/// columns is the cost of serialization plus one request/reply round trip
/// per 64 KiB chunk — the protocol itself adds no scan work, which the
/// match-parity assertion (daemon events bit-identical to the in-process
/// reports) makes checkable.
pub fn daemon_throughput(config: &RunConfig) -> String {
    let mut t = Table::new([
        "Benchmark",
        "Streams",
        "Transport",
        "Total KiB",
        "In-process pool (ms)",
        "Daemon (ms)",
        "Wire cost",
        "Matches",
    ]);
    let total_bytes = (config.input_kib * 1024).max(64 * 1024);
    const WORKERS: usize = 4;
    let sock_dir = std::env::temp_dir().join(format!("ca-bench-daemon-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&sock_dir);
    for benchmark in [Benchmark::Snort, Benchmark::Spm] {
        let w = benchmark.build(config.scale, config.seed);
        // The daemon compiles from rule *text*; round-trip the workload
        // NFA through ANML so the in-process baseline and the daemon
        // compile from the identical source.
        let rules = cache_automaton::automata::anml::to_anml(&w.nfa, "bench");
        let ca = CacheAutomaton::builder().optimize(Optimize::Never).build();
        let Ok(nfa) = cache_automaton::automata::anml::parse_anml(&rules) else { continue };
        let Ok(program) = ca.compile_nfa(&nfa) else { continue };
        for streams in [4usize, 16] {
            let per_stream = (total_bytes / streams).max(1);
            let inputs: Vec<Vec<u8>> = (0..streams)
                .map(|i| w.input(per_stream, config.seed ^ 0xdae3 ^ i as u64))
                .collect();
            let (pool_ms, baseline) = timed_pool(&program, &inputs, WORKERS);
            let matches: usize = baseline.iter().map(|r| r.matches.len()).sum();
            for (transport, addr) in [
                ("unix", format!("unix:{}", sock_dir.join(format!("{streams}.sock")).display())),
                ("tcp", "127.0.0.1:0".to_string()),
            ] {
                let options =
                    DaemonOptions { pool: PoolOptions { workers: WORKERS, ..Default::default() } };
                let daemon =
                    Daemon::bind(&ca, &rules, &addr, options).expect("daemon binds locally");
                let started = Instant::now();
                let mut client = Client::connect(&daemon.local_addr()).expect("local connect");
                let ids: Vec<u64> =
                    inputs.iter().map(|_| client.open_stream().expect("open").0).collect();
                let mut offset = 0;
                loop {
                    let mut fed_any = false;
                    for (&id, input) in ids.iter().zip(&inputs) {
                        if offset < input.len() {
                            let end = (offset + FEED_CHUNK).min(input.len());
                            client.feed(id, &input[offset..end]).expect("feed");
                            fed_any = true;
                        }
                    }
                    if !fed_any {
                        break;
                    }
                    offset += FEED_CHUNK;
                }
                let reports: Vec<_> =
                    ids.into_iter().map(|id| client.finish(id).expect("finish")).collect();
                let daemon_ms = started.elapsed().as_secs_f64() * 1e3;
                drop(client);
                daemon.shutdown().expect("daemon joins cleanly");
                for (got, want) in reports.iter().zip(&baseline) {
                    assert_eq!(got.events, want.matches, "wire stream diverged from in-process");
                    assert_eq!(got.exec, want.exec, "wire accounting diverged from in-process");
                }
                t.row([
                    benchmark.name().to_string(),
                    streams.to_string(),
                    transport.to_string(),
                    (total_bytes / 1024).to_string(),
                    fnum(pool_ms, 2),
                    fnum(daemon_ms, 2),
                    format!("{:.2}x", daemon_ms / pool_ms.max(1e-9)),
                    matches.to_string(),
                ]);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&sock_dir);
    format!(
        "## Serving: daemon wire protocol vs in-process pool\n\n{}\nEach row drives the \
         same streams once through a ScanPool in-process and once through `cactl serve`'s \
         wire protocol (OPEN_STREAM / FEED_CHUNK / FINISH over a local socket, one \
         connection, 64 KiB chunks). Every wire report is asserted bit-identical — events \
         and exec stats — to its in-process twin before the timings are tabulated.\n",
        t.render()
    )
}

/// Feeds every input through a fresh pool round-robin (the service-like
/// access pattern: no stream is fully buffered before the next gets CPU)
/// and returns (wall-clock ms, per-stream reports in input order).
fn timed_pool(program: &Program, inputs: &[Vec<u8>], workers: usize) -> (f64, Vec<RunReport>) {
    let started = Instant::now();
    let pool = ScanPool::new(
        program,
        PoolOptions { workers, max_fabrics: workers, ..PoolOptions::default() },
    )
    .expect("pool options are valid");
    let mut handles: Vec<_> =
        inputs.iter().map(|_| pool.open_stream().expect("pool is running")).collect();
    let mut offset = 0;
    loop {
        let mut fed_any = false;
        for (handle, input) in handles.iter_mut().zip(inputs) {
            if offset < input.len() {
                let end = (offset + FEED_CHUNK).min(input.len());
                handle.feed(&input[offset..end]).expect("stream is open");
                fed_any = true;
            }
        }
        if !fed_any {
            break;
        }
        offset += FEED_CHUNK;
    }
    let reports: Vec<RunReport> =
        handles.into_iter().map(|h| h.finish().expect("stream drains cleanly")).collect();
    pool.shutdown().expect("workers join cleanly");
    (started.elapsed().as_secs_f64() * 1e3, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_workloads::Scale;

    #[test]
    fn daemon_study_renders_and_agrees_with_in_process() {
        let config = RunConfig { scale: Scale::tiny(), input_kib: 8, seed: 5 };
        let section = daemon_throughput(&config);
        assert!(section.contains("## Serving: daemon"));
        // 2 benchmarks x 2 stream counts x 2 transports of data rows,
        // plus header and separator.
        assert!(section.matches("\n|").count() >= 10);
    }

    #[test]
    fn multistream_study_renders_and_agrees_with_serial() {
        let config = RunConfig { scale: Scale::tiny(), input_kib: 8, seed: 5 };
        let section = multistream(&config);
        assert!(section.contains("## Serving"));
        // 2 benchmarks x 4 stream counts x 3 worker counts of data rows,
        // plus header, separator, and the trailing prose.
        assert!(section.matches("\n|").count() >= 24);
    }
}
