//! Scan-kernel micro-benchmarks: the sparse active-set worklist loop
//! against the dense reference loop, on rulesets across the activity
//! spectrum.
//!
//! Low-activity rulesets are where the worklist pays off: ClamAV-style
//! binary signatures leave almost every partition idle on almost every
//! symbol, so the worklist's per-cycle cost decouples from fabric size
//! while the dense loop keeps scanning all of it. Bro217 sits in the
//! middle (small fabric, literal patterns), and dotstar-heavy Snort plus
//! fragment-dense SPM keep most partitions lit — there the adaptive loop
//! falls back to its sequential sweep and is expected to track the dense
//! loop closely, bounding the overhead when sparsity is absent.

use ca_compiler::{compile, CompilerOptions};
use ca_sim::{DesignKind, Fabric, RunOptions};
use ca_workloads::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_scan_kernel(c: &mut Criterion) {
    let cases = [
        ("clamav", Benchmark::ClamAv, Scale(1.0)),
        ("bro217", Benchmark::Bro217, Scale(0.5)),
        ("spm", Benchmark::Spm, Scale(0.1)),
        ("snort", Benchmark::Snort, Scale(0.05)),
    ];
    let input_len = 256 * 1024;

    let mut group = c.benchmark_group("scan_kernel");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(input_len as u64));

    for (name, benchmark, scale) in cases {
        let workload = benchmark.build(scale, 7);
        let input = workload.input(input_len, 3);
        let compiled =
            compile(&workload.nfa, &CompilerOptions::for_design(DesignKind::Performance))
                .expect("fits");

        group.bench_function(BenchmarkId::new("worklist", name), |b| {
            let mut fabric = Fabric::new(&compiled.bitstream).expect("valid");
            b.iter(|| fabric.run(&input).events.len())
        });
        group.bench_function(BenchmarkId::new("dense", name), |b| {
            let mut fabric = Fabric::new(&compiled.bitstream).expect("valid");
            b.iter(|| {
                fabric.run_dense(&input, &RunOptions::default()).expect("fresh run").events.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_kernel);
criterion_main!(benches);
