//! Engine micro-benchmarks: symbols/second of the CPU reference engines
//! and the hardware fabric simulator on a representative ruleset.

use ca_automata::engine::{BitsetEngine, Engine, SparseEngine};
use ca_compiler::{compile, CompilerOptions};
use ca_sim::{DesignKind, Fabric};
use ca_workloads::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_engines(c: &mut Criterion) {
    let workload = Benchmark::Snort.build(Scale(0.02), 7);
    let input = workload.input(64 * 1024, 3);

    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(input.len() as u64));

    group.bench_function(BenchmarkId::new("sparse_cpu", "snort2%"), |b| {
        let mut engine = SparseEngine::new(&workload.nfa);
        b.iter(|| engine.run(&input).len())
    });

    group.bench_function(BenchmarkId::new("bitset_cpu", "snort2%"), |b| {
        let mut engine = BitsetEngine::new(&workload.nfa);
        b.iter(|| engine.run(&input).len())
    });

    // literal-only baseline: Aho-Corasick over an ExactMatch dictionary
    let literal_wl = Benchmark::ExactMatch.build(Scale(0.1), 7);
    let literal_input = literal_wl.input(64 * 1024, 3);
    let patterns = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        ca_workloads::patterns::exact_match_patterns(&mut rng, 300)
    };
    let ac =
        ca_baselines::AhoCorasick::new(&patterns.iter().map(String::as_bytes).collect::<Vec<_>>());
    group.bench_function(BenchmarkId::new("aho_corasick_cpu", "300 literals"), |b| {
        b.iter(|| ac.count_matches(&literal_input))
    });

    for design in [DesignKind::Performance, DesignKind::Space] {
        let compiled = compile(&workload.nfa, &CompilerOptions::for_design(design)).expect("fits");
        group.bench_function(BenchmarkId::new("fabric", design.abbrev()), |b| {
            let mut fabric = Fabric::new(&compiled.bitstream).expect("valid");
            b.iter(|| fabric.run(&input).events.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
