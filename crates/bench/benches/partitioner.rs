//! Partitioner micro-benchmarks: multilevel k-way on grids and on a real
//! oversized NFA component.

use ca_partition::{partition_kway, Graph, PartitionOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn grid(w: usize, h: usize) -> Graph {
    let mut edges = Vec::new();
    let id = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y), 1));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1), 1));
            }
        }
    }
    Graph::from_edges(w * h, &edges)
}

fn bench_partitioner(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);

    for (label, g, k) in [("grid_32x32_k8", grid(32, 32), 8), ("grid_64x64_k16", grid(64, 64), 16)]
    {
        group.bench_function(BenchmarkId::new("kway", label), |b| {
            b.iter(|| partition_kway(&g, k, &PartitionOptions::default()).edgecut)
        });
    }

    // an actual oversized component: the SPM space-merged automaton
    let workload = ca_workloads::Benchmark::Spm.build(ca_workloads::Scale(0.05), 3);
    let merged = workload.space_optimized();
    let cc = ca_automata::analysis::connected_components(&merged);
    let biggest = (0..cc.len()).max_by_key(|&i| cc.components[i].len()).unwrap();
    let sub = ca_automata::analysis::extract_component(&merged, &cc, biggest);
    let mut edges = Vec::new();
    for (id, _) in sub.iter() {
        for t in sub.successors(id) {
            edges.push((id.0, t.0, 1));
        }
    }
    let g = Graph::from_edges(sub.len(), &edges);
    let k = sub.len().div_ceil(256).max(2);
    group.bench_function(
        BenchmarkId::new("kway_nfa_component", format!("{}states_k{k}", sub.len())),
        |b| b.iter(|| partition_kway(&g, k, &PartitionOptions::default()).edgecut),
    );
    group.finish();
}

criterion_group!(benches, bench_partitioner);
criterion_main!(benches);
