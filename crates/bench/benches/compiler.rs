//! Compiler micro-benchmarks: pattern compilation, space optimization and
//! the mapping pipeline (plan/place/emit) at two workload sizes.

use ca_compiler::{compile, CompilerOptions};
use ca_sim::DesignKind;
use ca_workloads::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    group.sample_size(10);

    for (label, scale) in [("tiny", Scale::tiny()), ("10%", Scale(0.10))] {
        let workload = Benchmark::Snort.build(scale, 7);
        group.bench_function(BenchmarkId::new("map_CA_P", label), |b| {
            b.iter(|| {
                compile(&workload.nfa, &CompilerOptions::for_design(DesignKind::Performance))
                    .expect("fits")
                    .stats
                    .partitions_used
            })
        });
        group.bench_function(BenchmarkId::new("space_optimize", label), |b| {
            b.iter(|| ca_automata::optimize::space_optimize(&workload.nfa).0.len())
        });
    }

    // regex front-end on a synthetic rulebook
    let patterns = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        ca_workloads::patterns::snort_patterns(&mut rng, 250)
    };
    let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
    group.bench_function("regex_compile_250_rules", |b| {
        b.iter(|| ca_automata::regex::compile_patterns(&refs).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
