//! Micro-benchmarks for the fabric's auxiliary paths: configuration page
//! emission/reload and snapshot-resume chunked scanning.

use ca_compiler::{compile, CompilerOptions};
use ca_sim::{emit_pages, load_pages, ConfigImage, DesignKind, Fabric, RunOptions};
use ca_workloads::{Benchmark, Scale};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fabric_features(c: &mut Criterion) {
    let workload = Benchmark::Bro217.build(Scale(0.5), 7);
    let compiled = compile(&workload.nfa, &CompilerOptions::for_design(DesignKind::Performance))
        .expect("fits");
    let input = workload.input(64 * 1024, 3);

    let mut group = c.benchmark_group("fabric_features");
    group.sample_size(10);

    group
        .bench_function("emit_pages", |b| b.iter(|| emit_pages(&compiled.bitstream).total_bytes()));

    let image = emit_pages(&compiled.bitstream);
    group.bench_function("capg_roundtrip", |b| {
        b.iter(|| {
            let bytes = image.to_capg_bytes();
            ConfigImage::from_capg_bytes(&bytes).expect("roundtrip").total_bytes()
        })
    });

    group.bench_function("load_pages", |b| {
        b.iter(|| load_pages(&image).expect("valid").ste_count())
    });

    group.bench_function("chunked_scan_resume", |b| {
        b.iter(|| {
            let mut fabric = Fabric::new(&compiled.bitstream).expect("valid");
            let mut resume = None;
            let mut events = 0usize;
            for chunk in input.chunks(4096) {
                let r = fabric
                    .run_with(chunk, &RunOptions { resume, ..Default::default() })
                    .expect("own snapshot");
                events += r.events.len();
                resume = r.snapshot;
            }
            events
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fabric_features);
criterion_main!(benches);
