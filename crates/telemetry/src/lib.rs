//! Telemetry for the Cache Automaton scan/compile pipeline.
//!
//! The paper's headline claims rest on *activity* accounting — §5.3's
//! energy model charges only active partitions and switch signals — so a
//! production deployment needs to watch those counters while a run
//! executes, not reconstruct them afterwards. This crate provides the
//! observability layer the rest of the workspace instruments against:
//!
//! * [`TelemetrySink`] — the trait an observer implements. The event
//!   taxonomy is deliberately small: **counters** (monotonic totals that
//!   reconcile with `ExecStats` / `MappingStats` / `CacheStats`),
//!   **gauges** (point-in-time measurements with a position label, e.g.
//!   active partitions every N symbols), **spans** (wall-clock phase
//!   timings with an index label, e.g. per-stripe guess time) and **logs**
//!   (human-readable progress lines).
//! * [`Telemetry`] — the cheap cloneable handle instrumented code holds.
//!   A disabled handle (the default) is one `Option` branch per event
//!   site: branch-predictable, allocation-free, no dynamic dispatch.
//! * [`MemoryRecorder`] — a thread-safe in-memory sink for tests and
//!   programmatic inspection.
//! * [`JsonLinesWriter`] — one JSON object per event, streamed to any
//!   `Write` (`cactl run --metrics <path>` uses it over a file).
//! * [`validate_jsonl`] — the schema checker CI runs over emitted files.
//!
//! # Event naming
//!
//! Names are dot-separated `&'static str` identifiers, prefixed by layer:
//! `fabric.*` (simulator run loop), `scan.*` (sharded scan driver),
//! `compile.*` (mapping-compiler pass pipeline), `cache.*` (program
//! cache), `suite.*` (benchmark harness). Counter totals within one layer
//! reconcile exactly with that layer's stats struct; see DESIGN.md §7 for
//! the full taxonomy and the reconciliation guarantees.
//!
//! # Example
//!
//! ```
//! use ca_telemetry::{MemoryRecorder, Telemetry};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(MemoryRecorder::new());
//! let telemetry = Telemetry::from_arc(recorder.clone());
//! telemetry.counter("fabric.reports", 3);
//! telemetry.counter("fabric.reports", 2);
//! assert_eq!(recorder.counter("fabric.reports"), 5);
//!
//! let disabled = Telemetry::disabled();
//! assert!(!disabled.is_enabled());
//! disabled.counter("fabric.reports", 99); // no-op, no allocation
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// An observer of pipeline events.
///
/// Implementations must be cheap and non-blocking from the caller's
/// perspective (the fabric hot loop calls in); the bundled sinks guard
/// their state with a `Mutex`, which is fine at the emission rates the
/// instrumentation produces (one batch of counters per run, one gauge per
/// N thousand symbols).
pub trait TelemetrySink: Send + Sync + fmt::Debug {
    /// Adds `delta` to the monotonic counter `name`.
    fn counter(&self, name: &'static str, delta: u64);

    /// Records a point-in-time measurement. `label` positions the sample
    /// (symbol offset, stripe index, attempt number — the emitting site
    /// documents which).
    fn gauge(&self, name: &'static str, label: u64, value: f64);

    /// Records a wall-clock span timing in milliseconds. `label` is an
    /// index (stripe number, retry attempt) distinguishing repeated spans
    /// of the same name.
    fn span(&self, name: &'static str, label: u64, ms: f64);

    /// Receives a human-readable progress line.
    fn log(&self, message: &str) {
        let _ = message;
    }

    /// Flushes any buffered output. Called by [`Telemetry::flush`];
    /// buffering sinks (the JSON-lines writer) override it.
    fn flush(&self) {}
}

/// The handle instrumented code holds: either disabled (the default — a
/// single predictable branch per event site, no allocation, no dispatch)
/// or an `Arc` to a live [`TelemetrySink`].
///
/// Cloning is one `Arc` bump; handles are passed freely across threads.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.sink {
            Some(s) => write!(f, "Telemetry({s:?})"),
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// The disabled handle: every event is a no-op.
    pub const fn disabled() -> Telemetry {
        Telemetry { sink: None }
    }

    /// A handle driving `sink`.
    pub fn new(sink: impl TelemetrySink + 'static) -> Telemetry {
        Telemetry { sink: Some(Arc::new(sink)) }
    }

    /// A handle driving an already-shared sink (keep your own `Arc` clone
    /// to read a [`MemoryRecorder`] back afterwards).
    pub fn from_arc(sink: Arc<dyn TelemetrySink>) -> Telemetry {
        Telemetry { sink: Some(sink) }
    }

    /// Whether events reach a sink. Hot loops hoist this into a local to
    /// skip even the per-event `Option` check.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Adds `delta` to counter `name` (no-op when disabled).
    #[inline]
    pub fn counter(&self, name: &'static str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter(name, delta);
        }
    }

    /// Records gauge `name` at position `label` (no-op when disabled).
    #[inline]
    pub fn gauge(&self, name: &'static str, label: u64, value: f64) {
        if let Some(sink) = &self.sink {
            sink.gauge(name, label, value);
        }
    }

    /// Records span `name` with index `label` (no-op when disabled).
    #[inline]
    pub fn span(&self, name: &'static str, label: u64, ms: f64) {
        if let Some(sink) = &self.sink {
            sink.span(name, label, ms);
        }
    }

    /// Emits a progress line. The message is built lazily so a disabled
    /// handle never pays for formatting.
    #[inline]
    pub fn log(&self, message: impl FnOnce() -> String) {
        if let Some(sink) = &self.sink {
            sink.log(&message());
        }
    }

    /// Flushes the sink's buffered output, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.flush();
        }
    }
}

/// One recorded gauge or span sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Position / index label the emitter attached.
    pub label: u64,
    /// Gauge value, or span duration in milliseconds.
    pub value: f64,
}

/// A thread-safe in-memory sink: counters accumulate, gauges and spans
/// append, logs collect. The test-and-inspection workhorse.
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    inner: Mutex<RecorderState>,
}

#[derive(Debug, Default)]
struct RecorderState {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Vec<Sample>>,
    spans: BTreeMap<&'static str, Vec<Sample>>,
    logs: Vec<String>,
}

impl MemoryRecorder {
    /// An empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.inner.lock().expect("telemetry recorder poisoned")
    }

    /// Total of counter `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.state().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of every counter total.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.state().counters.clone()
    }

    /// All samples of gauge `name`, in emission order.
    pub fn gauges(&self, name: &str) -> Vec<Sample> {
        self.state().gauges.get(name).cloned().unwrap_or_default()
    }

    /// All samples of span `name`, in emission order.
    pub fn spans(&self, name: &str) -> Vec<Sample> {
        self.state().spans.get(name).cloned().unwrap_or_default()
    }

    /// Sum of the recorded durations of span `name`, in milliseconds.
    pub fn span_total_ms(&self, name: &str) -> f64 {
        self.state().spans.get(name).map_or(0.0, |v| v.iter().map(|s| s.value).sum())
    }

    /// Collected log lines, in emission order.
    pub fn logs(&self) -> Vec<String> {
        self.state().logs.clone()
    }

    /// Total number of recorded events of every kind.
    pub fn event_count(&self) -> usize {
        let s = self.state();
        s.counters.len()
            + s.gauges.values().map(Vec::len).sum::<usize>()
            + s.spans.values().map(Vec::len).sum::<usize>()
            + s.logs.len()
    }
}

impl TelemetrySink for MemoryRecorder {
    fn counter(&self, name: &'static str, delta: u64) {
        *self.state().counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, label: u64, value: f64) {
        self.state().gauges.entry(name).or_default().push(Sample { label, value });
    }

    fn span(&self, name: &'static str, label: u64, ms: f64) {
        self.state().spans.entry(name).or_default().push(Sample { label, value: ms });
    }

    fn log(&self, message: &str) {
        self.state().logs.push(message.to_string());
    }
}

/// A sink that prints log lines to stderr and discards metrics — the
/// progress reporter interactive harnesses (the bench suite) default to.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrLogger;

impl TelemetrySink for StderrLogger {
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _label: u64, _value: f64) {}
    fn span(&self, _name: &'static str, _label: u64, _ms: f64) {}
    fn log(&self, message: &str) {
        eprintln!("{message}");
    }
}

/// Streams one JSON object per event to a writer (JSON-lines / ndjson).
///
/// Schema (one line each, `\n`-terminated):
///
/// ```text
/// {"type":"counter","name":"fabric.reports","value":130}
/// {"type":"gauge","name":"fabric.active_partitions","label":4096,"value":3}
/// {"type":"span","name":"scan.stripe.guess","label":2,"ms":0.41}
/// {"type":"log","message":"[suite] running Snort ..."}
/// ```
///
/// `value` of a counter is a non-negative integer; gauge `value` and span
/// `ms` are finite JSON numbers; `label` is a non-negative integer.
/// [`validate_jsonl`] checks exactly this contract.
#[derive(Debug)]
pub struct JsonLinesWriter<W: Write + Send> {
    writer: Mutex<W>,
}

impl JsonLinesWriter<std::io::BufWriter<std::fs::File>> {
    /// Creates (truncating) `path` and streams events into it, buffered.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(
        path: &str,
    ) -> std::io::Result<JsonLinesWriter<std::io::BufWriter<std::fs::File>>> {
        Ok(JsonLinesWriter::new(std::io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> JsonLinesWriter<W> {
    /// Wraps a writer. Events are written as they arrive; call
    /// [`Telemetry::flush`] (or drop the sink) to flush buffering writers.
    pub fn new(writer: W) -> JsonLinesWriter<W> {
        JsonLinesWriter { writer: Mutex::new(writer) }
    }

    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().expect("telemetry writer poisoned");
        // Telemetry must never fail the instrumented computation: write
        // errors are swallowed (the validator catches truncated output).
        let _ = writeln!(w, "{line}");
    }
}

impl<W: Write + Send> Drop for JsonLinesWriter<W> {
    fn drop(&mut self) {
        if let Ok(w) = self.writer.get_mut() {
            let _ = w.flush();
        }
    }
}

/// Formats `f` the way the schema expects: finite, with a decimal point or
/// exponent so integers and floats stay distinguishable to strict parsers.
fn json_number(f: f64) -> String {
    if f.is_finite() {
        let s = format!("{f}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // NaN/inf are not valid JSON; clamp to null-ish zero.
        "0.0".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<W: Write + Send + fmt::Debug> TelemetrySink for JsonLinesWriter<W> {
    fn counter(&self, name: &'static str, delta: u64) {
        self.write_line(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{delta}}}",
            json_escape(name)
        ));
    }

    fn gauge(&self, name: &'static str, label: u64, value: f64) {
        self.write_line(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"label\":{label},\"value\":{}}}",
            json_escape(name),
            json_number(value)
        ));
    }

    fn span(&self, name: &'static str, label: u64, ms: f64) {
        self.write_line(&format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"label\":{label},\"ms\":{}}}",
            json_escape(name),
            json_number(ms)
        ));
    }

    fn log(&self, message: &str) {
        self.write_line(&format!("{{\"type\":\"log\",\"message\":\"{}\"}}", json_escape(message)));
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("telemetry writer poisoned").flush();
    }
}

/// A fan-out sink: every event goes to all children in order.
///
/// Lets `cactl` stream JSON lines to a file while a recorder also tallies
/// totals for the end-of-run summary.
#[derive(Debug)]
pub struct Tee {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl Tee {
    /// A sink forwarding to every element of `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TelemetrySink>>) -> Tee {
        Tee { sinks }
    }
}

impl TelemetrySink for Tee {
    fn counter(&self, name: &'static str, delta: u64) {
        for s in &self.sinks {
            s.counter(name, delta);
        }
    }
    fn gauge(&self, name: &'static str, label: u64, value: f64) {
        for s in &self.sinks {
            s.gauge(name, label, value);
        }
    }
    fn span(&self, name: &'static str, label: u64, ms: f64) {
        for s in &self.sinks {
            s.span(name, label, ms);
        }
    }
    fn log(&self, message: &str) {
        for s in &self.sinks {
            s.log(message);
        }
    }
    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// JSON-lines schema validation (the CI checker)
// ---------------------------------------------------------------------------

/// Summary of a validated metrics file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonlSummary {
    /// Lines of each kind: counters, gauges, spans, logs.
    pub counters: usize,
    /// Gauge lines.
    pub gauges: usize,
    /// Span lines.
    pub spans: usize,
    /// Log lines.
    pub logs: usize,
}

impl JsonlSummary {
    /// Total validated event lines.
    pub fn total(&self) -> usize {
        self.counters + self.gauges + self.spans + self.logs
    }
}

/// Validates that `text` is a well-formed metrics stream: every non-empty
/// line a JSON object matching the [`JsonLinesWriter`] schema.
///
/// # Errors
///
/// The first offending line, as `"line N: reason"`.
pub fn validate_jsonl(text: &str) -> Result<JsonlSummary, String> {
    let mut summary = JsonlSummary::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields = parse_json_object(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = match fields.get("type") {
            Some(JsonValue::String(s)) => s.as_str(),
            _ => return Err(format!("line {}: missing string field \"type\"", i + 1)),
        };
        let err = |msg: &str| Err(format!("line {}: {msg}", i + 1));
        let require_name = || match fields.get("name") {
            Some(JsonValue::String(s)) if !s.is_empty() => Ok(()),
            _ => Err(format!("line {}: missing non-empty string field \"name\"", i + 1)),
        };
        let require_uint = |key: &str| match fields.get(key) {
            Some(JsonValue::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(()),
            _ => Err(format!("line {}: field \"{key}\" must be a non-negative integer", i + 1)),
        };
        let require_num = |key: &str| match fields.get(key) {
            Some(JsonValue::Number(n)) if n.is_finite() => Ok(()),
            _ => Err(format!("line {}: field \"{key}\" must be a finite number", i + 1)),
        };
        match kind {
            "counter" => {
                require_name()?;
                require_uint("value")?;
                summary.counters += 1;
            }
            "gauge" => {
                require_name()?;
                require_uint("label")?;
                require_num("value")?;
                summary.gauges += 1;
            }
            "span" => {
                require_name()?;
                require_uint("label")?;
                require_num("ms")?;
                summary.spans += 1;
            }
            "log" => {
                match fields.get("message") {
                    Some(JsonValue::String(_)) => {}
                    _ => return err("missing string field \"message\""),
                }
                summary.logs += 1;
            }
            other => return err(&format!("unknown event type \"{other}\"")),
        }
    }
    Ok(summary)
}

/// Minimal JSON value for the schema checker (no external deps).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

/// Parses one flat JSON object (`{"k":v,...}`, no nesting — the schema
/// never nests). Returns the key→value map.
fn parse_json_object(s: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = s.char_indices().peekable();
    let mut map = BTreeMap::new();
    skip_ws(&mut chars);
    if chars.next().map(|(_, c)| c) != Some('{') {
        return Err("expected '{'".into());
    }
    skip_ws(&mut chars);
    if let Some(&(_, '}')) = chars.peek() {
        chars.next();
        return finish(chars, map);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next().map(|(_, c)| c) != Some(':') {
            return Err(format!("expected ':' after key \"{key}\""));
        }
        skip_ws(&mut chars);
        let value = parse_value(&mut chars)?;
        map.insert(key, value);
        skip_ws(&mut chars);
        match chars.next().map(|(_, c)| c) {
            Some(',') => continue,
            Some('}') => return finish(chars, map),
            _ => return Err("expected ',' or '}'".into()),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn finish(
    mut chars: Chars<'_>,
    map: BTreeMap<String, JsonValue>,
) -> Result<BTreeMap<String, JsonValue>, String> {
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(map),
        Some((_, c)) => Err(format!("trailing content starting at '{c}'")),
    }
}

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some(&(_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    if chars.next().map(|(_, c)| c) != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    loop {
        match chars.next().map(|(_, c)| c) {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next().map(|(_, c)| c) {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('b') => out.push('\u{8}'),
                Some('f') => out.push('\u{c}'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let d = chars
                            .next()
                            .map(|(_, c)| c)
                            .and_then(|c| c.to_digit(16))
                            .ok_or("bad \\u escape")?;
                        code = code * 16 + d;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return Err("bad escape".into()),
            },
            Some(c) if (c as u32) < 0x20 => return Err("raw control character in string".into()),
            Some(c) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_value(chars: &mut Chars<'_>) -> Result<JsonValue, String> {
    match chars.peek().map(|&(_, c)| c) {
        Some('"') => Ok(JsonValue::String(parse_string(chars)?)),
        Some('t') => parse_literal(chars, "true", JsonValue::Bool(true)),
        Some('f') => parse_literal(chars, "false", JsonValue::Bool(false)),
        Some('n') => parse_literal(chars, "null", JsonValue::Null),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let mut num = String::new();
            while let Some(&(_, c)) = chars.peek() {
                if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                    num.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            num.parse::<f64>().map(JsonValue::Number).map_err(|_| format!("bad number '{num}'"))
        }
        Some('{') | Some('[') => Err("nested values are not part of the metrics schema".into()),
        _ => Err("expected a JSON value".into()),
    }
}

fn parse_literal(chars: &mut Chars<'_>, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    for expected in lit.chars() {
        if chars.next().map(|(_, c)| c) != Some(expected) {
            return Err(format!("bad literal (expected '{lit}')"));
        }
    }
    Ok(v)
}

/// A span timer: measures from construction to [`SpanGuard::finish`] (or
/// drop) and reports to the handle. Disabled handles never read the clock.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    telemetry: &'t Telemetry,
    name: &'static str,
    label: u64,
    started: Option<std::time::Instant>,
}

impl<'t> SpanGuard<'t> {
    /// Starts timing span `name` with index `label` against `telemetry`.
    pub fn start(telemetry: &'t Telemetry, name: &'static str, label: u64) -> SpanGuard<'t> {
        let started = telemetry.is_enabled().then(std::time::Instant::now);
        SpanGuard { telemetry, name, label, started }
    }

    /// Stops the timer and emits the span now.
    pub fn finish(mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        if let Some(started) = self.started.take() {
            self.telemetry.span(self.name, self.label, started.elapsed().as_secs_f64() * 1e3);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("x", 1);
        t.gauge("x", 0, 1.0);
        t.span("x", 0, 1.0);
        t.log(|| unreachable!("lazy log must not format when disabled"));
        t.flush();
    }

    #[test]
    fn recorder_accumulates_counters_and_samples() {
        let rec = Arc::new(MemoryRecorder::new());
        let t = Telemetry::from_arc(rec.clone());
        assert!(t.is_enabled());
        t.counter("a.b", 2);
        t.counter("a.b", 3);
        t.gauge("g", 10, 1.5);
        t.gauge("g", 20, 2.5);
        t.span("s", 0, 4.0);
        t.span("s", 1, 6.0);
        t.log(|| "hello".to_string());
        assert_eq!(rec.counter("a.b"), 5);
        assert_eq!(rec.counter("missing"), 0);
        assert_eq!(rec.gauges("g").len(), 2);
        assert_eq!(rec.gauges("g")[1], Sample { label: 20, value: 2.5 });
        assert_eq!(rec.span_total_ms("s"), 10.0);
        assert_eq!(rec.logs(), vec!["hello".to_string()]);
        assert_eq!(rec.event_count(), 1 + 2 + 2 + 1);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = Arc::new(MemoryRecorder::new());
        let t = Telemetry::from_arc(rec.clone());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        t.counter("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.counter("hits"), 800);
    }

    #[test]
    fn json_lines_emit_and_validate() {
        let writer = JsonLinesWriter::new(Vec::new());
        let t = Telemetry::new(writer);
        t.counter("fabric.reports", 130);
        t.gauge("fabric.active_partitions", 4096, 3.0);
        t.span("scan.stripe.guess", 2, 0.4125);
        t.log(|| "escaped \"quotes\"\nand newline".to_string());
        // Recover the buffer through a fresh writer round trip: emit to a
        // shared Vec via Arc instead.
        drop(t);
        // Re-emit against an inspectable buffer.
        #[derive(Debug, Default)]
        struct Buf(Mutex<Vec<u8>>);
        impl Write for &Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Box::leak(Box::new(Buf::default()));
        let t = Telemetry::new(JsonLinesWriter::new(&*buf));
        t.counter("fabric.reports", 130);
        t.gauge("fabric.active_partitions", 4096, 3.0);
        t.span("scan.stripe.guess", 2, 0.4125);
        t.log(|| "escaped \"quotes\"\nand newline".to_string());
        t.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary, JsonlSummary { counters: 1, gauges: 1, spans: 1, logs: 1 });
        assert_eq!(summary.total(), 4);
        assert!(text.contains("\"value\":130"));
        assert!(text.contains("\\\"quotes\\\"\\n"));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for (line, why) in [
            ("not json", "expected"),
            ("{\"type\":\"counter\",\"name\":\"x\"}", "value"),
            ("{\"type\":\"counter\",\"name\":\"x\",\"value\":-1}", "non-negative"),
            ("{\"type\":\"counter\",\"name\":\"x\",\"value\":1.5}", "non-negative integer"),
            ("{\"type\":\"gauge\",\"name\":\"x\",\"label\":0}", "value"),
            ("{\"type\":\"span\",\"name\":\"x\",\"label\":0,\"ms\":\"fast\"}", "finite number"),
            ("{\"type\":\"mystery\"}", "unknown event type"),
            ("{\"type\":\"log\"}", "message"),
            ("{\"type\":\"counter\",\"name\":\"\",\"value\":3}", "non-empty"),
            ("{\"type\":\"counter\",\"name\":\"x\",\"value\":{}}", "nested"),
        ] {
            let err = validate_jsonl(line).unwrap_err();
            assert!(err.contains(why), "line {line:?}: error {err:?} should mention {why:?}");
            assert!(err.starts_with("line 1:"), "{err}");
        }
        // empty input and blank lines are fine
        assert_eq!(validate_jsonl("").unwrap().total(), 0);
        assert_eq!(validate_jsonl("\n\n").unwrap().total(), 0);
    }

    #[test]
    fn validator_accepts_numbers_in_all_shapes() {
        let text = "{\"type\":\"gauge\",\"name\":\"x\",\"label\":0,\"value\":1e-3}\n\
                    {\"type\":\"span\",\"name\":\"x\",\"label\":18446744073709551615,\"ms\":0.0}\n";
        let s = validate_jsonl(text).unwrap();
        assert_eq!((s.gauges, s.spans), (1, 1));
    }

    #[test]
    fn tee_fans_out() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        let t = Telemetry::new(Tee::new(vec![a.clone(), b.clone()]));
        t.counter("n", 7);
        t.log(|| "both".into());
        assert_eq!(a.counter("n"), 7);
        assert_eq!(b.counter("n"), 7);
        assert_eq!(b.logs(), vec!["both".to_string()]);
    }

    #[test]
    fn span_guard_times_and_emits() {
        let rec = Arc::new(MemoryRecorder::new());
        let t = Telemetry::from_arc(rec.clone());
        {
            let guard = SpanGuard::start(&t, "timed", 3);
            std::thread::sleep(std::time::Duration::from_millis(2));
            guard.finish();
        }
        let spans = rec.spans("timed");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].label, 3);
        assert!(spans[0].value >= 1.0, "slept 2ms, recorded {}", spans[0].value);
        // drop also emits
        {
            let _guard = SpanGuard::start(&t, "dropped", 0);
        }
        assert_eq!(rec.spans("dropped").len(), 1);
        // disabled: no clock read, no emission
        let off = Telemetry::disabled();
        SpanGuard::start(&off, "off", 0).finish();
    }

    #[test]
    fn json_number_formatting() {
        assert_eq!(json_number(1.0), "1.0");
        assert_eq!(json_number(0.25), "0.25");
        assert_eq!(json_number(f64::NAN), "0.0");
        assert_eq!(json_number(f64::INFINITY), "0.0");
    }
}
