//! Differential property tests: Aho–Corasick vs the NFA engines on random
//! literal dictionaries.

use ca_automata::engine::{Engine, SparseEngine};
use ca_automata::regex::compile_patterns;
use ca_baselines::AhoCorasick;
use proptest::prelude::*;

fn literal_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(b"abc".to_vec()), 1..6)
        .prop_map(|v| String::from_utf8(v).expect("ascii"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On literal patterns, Aho–Corasick and the NFA engine report the
    /// same (position, pattern) stream after per-(pos, code) dedup (the
    /// NFA engine reports each code at most once per position; AC reports
    /// per occurrence, which for distinct literals is the same thing —
    /// duplicate patterns are filtered out below).
    #[test]
    fn aho_corasick_equals_nfa(
        mut patterns in prop::collection::vec(literal_strategy(), 1..8),
        input in prop::collection::vec(prop::sample::select(b"abcd".to_vec()), 0..80),
    ) {
        patterns.sort();
        patterns.dedup();
        let ac = AhoCorasick::new(&patterns.iter().map(String::as_bytes).collect::<Vec<_>>());
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let nfa = compile_patterns(&refs).unwrap();
        // AC codes are indices into the sorted/deduped list, same as the
        // NFA's pattern indices.
        let mut a = ac.scan(&input);
        let mut b = SparseEngine::new(&nfa).run(&input);
        a.sort();
        a.dedup();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// count_matches agrees with scan length.
    #[test]
    fn count_equals_scan(
        patterns in prop::collection::vec(literal_strategy(), 1..6),
        input in prop::collection::vec(prop::sample::select(b"abc".to_vec()), 0..60),
    ) {
        let ac = AhoCorasick::new(&patterns.iter().map(String::as_bytes).collect::<Vec<_>>());
        prop_assert_eq!(ac.count_matches(&input), ac.scan(&input).len() as u64);
    }
}
