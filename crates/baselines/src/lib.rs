//! Baseline models for the Cache Automaton evaluation.
//!
//! * [`ap`] — Micron's DRAM Automata Processor (throughput/capacity model +
//!   the paper's *Ideal AP* energy comparison).
//! * [`asic`] — the HARE and UAP ASIC accelerators of Table 5, as
//!   executable analytic models built from their published constants.
//! * [`cpu`] — a *measured* x86 baseline: the VASim-style sparse engine
//!   timed on the host, plus the literature scaling constants the paper's
//!   3840× headline derives from.
//! * [`aho_corasick`] — the classic multi-literal matcher (the paper's
//!   reference \[1\]); a compute-centric baseline and another oracle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aho_corasick;
pub mod ap;
pub mod asic;
pub mod cpu;

pub use aho_corasick::AhoCorasick;
pub use ap::ApModel;
pub use asic::{AsicModel, HARE, UAP};
pub use cpu::{measure_cpu, CpuMeasurement, AP_OVER_CPU};
