//! Measured CPU baseline.
//!
//! The paper's 3840× CPU headline is literature-derived: 15× over AP
//! multiplied by the 256× AP-over-x86 factor reported by the ANMLZoo study
//! [Wadden et al., IISWC 2016]. We reproduce that derivation *and* measure
//! a real CPU baseline: the VASim-style sparse engine running on the host.

use ca_automata::engine::{Engine, SparseEngine};
use ca_automata::HomNfa;
use std::time::Instant;

/// AP speedup over an x86 CPU across the ANMLZoo suite (paper §1/§5.1).
pub const AP_OVER_CPU: f64 = 256.0;

/// One measured CPU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuMeasurement {
    /// Input bytes scanned.
    pub bytes: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Matches reported.
    pub matches: u64,
}

impl CpuMeasurement {
    /// Achieved throughput in Gbit/s.
    pub fn throughput_gbps(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / self.seconds / 1e9
        }
    }

    /// Achieved throughput in MB/s.
    pub fn throughput_mbps(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.seconds / 1e6
        }
    }
}

/// Times the sparse active-set engine over `input` on the host CPU.
///
/// This is the same execution strategy VASim (the paper's CPU simulator)
/// uses; absolute numbers depend on the host, which is exactly the point —
/// it is a *measured* baseline, reported alongside the paper's
/// literature-derived constant.
pub fn measure_cpu(nfa: &HomNfa, input: &[u8]) -> CpuMeasurement {
    let mut engine = SparseEngine::new(nfa);
    // warm-up pass to populate caches and page in tables
    let warmup_len = input.len().min(4096);
    let _ = engine.run(&input[..warmup_len]);
    let start = Instant::now();
    let events = engine.run(input);
    let seconds = start.elapsed().as_secs_f64();
    CpuMeasurement { bytes: input.len() as u64, seconds, matches: events.len() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::regex::compile_patterns;

    #[test]
    fn measurement_counts_and_times() {
        let nfa = compile_patterns(&["needle"]).unwrap();
        let mut input = vec![b'x'; 100_000];
        input.extend_from_slice(b"needle");
        let m = measure_cpu(&nfa, &input);
        assert_eq!(m.matches, 1);
        assert_eq!(m.bytes, 100_006);
        assert!(m.seconds > 0.0);
        assert!(m.throughput_gbps() > 0.0);
        assert!(m.throughput_mbps() > 0.0);
    }

    #[test]
    fn derived_headline_is_3840() {
        // 15x over AP x 256x AP-over-CPU = 3840x
        assert_eq!(15.0 * AP_OVER_CPU, 3840.0);
    }

    #[test]
    fn zero_length_input() {
        let nfa = compile_patterns(&["a"]).unwrap();
        let m = measure_cpu(&nfa, b"");
        assert_eq!(m.matches, 0);
        assert_eq!(m.throughput_gbps(), 0.0);
    }
}
