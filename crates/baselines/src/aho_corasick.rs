//! Aho–Corasick multi-pattern matcher — the classic compute-centric
//! baseline (the paper's reference \[1\]) for literal rule sets.
//!
//! Builds the goto/fail/output automaton over byte literals and scans one
//! byte at a time. Included both as a measured CPU baseline for the
//! exact-match benchmarks and as yet another independent oracle: on
//! literal patterns its match stream must equal the NFA engines'.

use ca_automata::engine::MatchEvent;
use ca_automata::ReportCode;
use std::collections::VecDeque;

/// A compiled Aho–Corasick automaton.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// goto function: `goto[state][byte]` = next state (dense).
    goto: Vec<[u32; 256]>,
    /// fail links.
    fail: Vec<u32>,
    /// output: pattern indices ending at this state.
    output: Vec<Vec<u32>>,
    pattern_count: usize,
}

impl AhoCorasick {
    /// Builds the automaton from byte-literal patterns.
    ///
    /// # Panics
    ///
    /// Panics if any pattern is empty.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> AhoCorasick {
        assert!(
            patterns.iter().all(|p| !p.as_ref().is_empty()),
            "empty patterns are not matchable"
        );
        // trie construction
        let mut goto: Vec<[u32; 256]> = vec![[u32::MAX; 256]];
        let mut output: Vec<Vec<u32>> = vec![Vec::new()];
        for (idx, pattern) in patterns.iter().enumerate() {
            let mut state = 0usize;
            for &b in pattern.as_ref() {
                let next = goto[state][b as usize];
                state = if next == u32::MAX {
                    goto.push([u32::MAX; 256]);
                    output.push(Vec::new());
                    let new_state = (goto.len() - 1) as u32;
                    goto[state][b as usize] = new_state;
                    new_state as usize
                } else {
                    next as usize
                };
            }
            output[state].push(idx as u32);
        }
        // BFS failure links; convert goto into a total transition function.
        let mut fail = vec![0u32; goto.len()];
        let mut queue = VecDeque::new();
        for slot in goto[0].iter_mut() {
            match *slot {
                u32::MAX => *slot = 0,
                s => {
                    fail[s as usize] = 0;
                    queue.push_back(s);
                }
            }
        }
        while let Some(state) = queue.pop_front() {
            let f = fail[state as usize];
            // merge outputs from the fail target
            let inherited = output[f as usize].clone();
            output[state as usize].extend(inherited);
            let frow = goto[f as usize];
            for (slot, &fnext) in goto[state as usize].iter_mut().zip(frow.iter()) {
                let next = *slot;
                if next == u32::MAX {
                    *slot = fnext;
                } else {
                    fail[next as usize] = fnext;
                    queue.push_back(next);
                }
            }
        }
        AhoCorasick { goto, fail, output, pattern_count: patterns.len() }
    }

    /// Number of automaton states (trie nodes).
    pub fn state_count(&self) -> usize {
        self.goto.len()
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Bytes of the dense transition table (the working set a CPU scan
    /// streams through — compare with the NFA's 32 B/state cache image).
    pub fn table_bytes(&self) -> usize {
        self.goto.len() * 256 * 4
    }

    /// Scans `input`, reporting every pattern occurrence as a
    /// [`MatchEvent`] with `pos` = offset of the final byte and `code` =
    /// pattern index — the same convention as the NFA engines.
    pub fn scan(&self, input: &[u8]) -> Vec<MatchEvent> {
        let mut events = Vec::new();
        let mut state = 0u32;
        for (pos, &b) in input.iter().enumerate() {
            state = self.goto[state as usize][b as usize];
            for &idx in &self.output[state as usize] {
                events.push(MatchEvent::new(pos as u64, ReportCode(idx)));
            }
        }
        events
    }

    /// Scan with only a match count (the hot path a real IDS uses).
    pub fn count_matches(&self, input: &[u8]) -> u64 {
        let mut count = 0u64;
        let mut state = 0u32;
        for &b in input {
            state = self.goto[state as usize][b as usize];
            count += self.output[state as usize].len() as u64;
        }
        count
    }

    #[allow(dead_code)]
    fn fail_link(&self, state: u32) -> u32 {
        self.fail[state as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_automata::engine::{Engine, SparseEngine};
    use ca_automata::regex::compile_patterns;

    #[test]
    fn textbook_example() {
        // the classic {he, she, his, hers} example
        let ac = AhoCorasick::new(&[b"he".as_slice(), b"she", b"his", b"hers"]);
        let mut hits = ac.scan(b"ushers");
        hits.sort();
        let got: Vec<(u64, u32)> = hits.iter().map(|e| (e.pos, e.code.0)).collect();
        // "she" ends at 3, "he" ends at 3, "hers" ends at 5
        assert_eq!(got, vec![(3, 0), (3, 1), (5, 3)]);
    }

    #[test]
    fn agrees_with_nfa_engine_on_literals() {
        let patterns = ["cat", "att", "cart", "t", "tta"];
        let ac = AhoCorasick::new(&patterns.map(str::as_bytes));
        let nfa = compile_patterns(&patterns).unwrap();
        let mut sparse = SparseEngine::new(&nfa);
        for input in [b"a cat in a cart".as_slice(), b"attta", b"", b"ttttt", b"catcartatt"] {
            let mut a = ac.scan(input);
            let mut b = sparse.run(input);
            a.sort();
            b.sort();
            assert_eq!(a, b, "input {input:?}");
        }
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let ac = AhoCorasick::new(&[b"aa".as_slice(), b"aaa"]);
        let hits = ac.scan(b"aaaa");
        // aa at 1,2,3; aaa at 2,3
        assert_eq!(hits.len(), 5);
        assert_eq!(ac.count_matches(b"aaaa"), 5);
    }

    #[test]
    fn state_and_table_accounting() {
        let ac = AhoCorasick::new(&[b"abc".as_slice(), b"abd"]);
        // root + a + ab + abc + abd
        assert_eq!(ac.state_count(), 5);
        assert_eq!(ac.pattern_count(), 2);
        assert_eq!(ac.table_bytes(), 5 * 1024);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[[0u8, 255, 0].as_slice(), &[255, 255]]);
        let hits = ac.scan(&[0, 255, 0, 255, 255, 0]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn empty_pattern_panics() {
        AhoCorasick::new(&[b"".as_slice()]);
    }
}
