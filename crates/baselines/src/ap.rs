//! Micron Automata Processor model.
//!
//! Constants from the paper (§1, §5) and the AP literature [Dlugosch et
//! al. 2014]: 133 MHz symbol clock at one symbol per cycle, 48 K STEs per
//! chip (384 K per 8-die rank), average fan-out reachability 230.5, fan-in
//! 16, reconfiguration in the tens of milliseconds.

use ca_sim::{EnergyParams, ExecStats};

/// Analytic model of one AP rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApModel {
    /// Symbol clock in MHz.
    pub freq_mhz: f64,
    /// STEs per chip.
    pub stes_per_chip: usize,
    /// Chips per rank.
    pub chips_per_rank: usize,
    /// Average one-hop reachability (fan-out).
    pub reachability: f64,
    /// Maximum incoming transitions per state.
    pub max_fan_in: usize,
    /// Typical configuration time for a full rank, milliseconds.
    pub config_time_ms: f64,
}

impl Default for ApModel {
    fn default() -> ApModel {
        ApModel {
            freq_mhz: 133.0,
            stes_per_chip: 48 * 1024,
            chips_per_rank: 8,
            reachability: 230.5,
            max_fan_in: 16,
            config_time_ms: 45.0,
        }
    }
}

impl ApModel {
    /// Deterministic throughput: one 8-bit symbol per cycle.
    pub fn throughput_gbps(&self) -> f64 {
        self.freq_mhz / 1000.0 * 8.0
    }

    /// STE capacity of a rank.
    pub fn rank_stes(&self) -> usize {
        self.stes_per_chip * self.chips_per_rank
    }

    /// Time to scan `bytes` of input, in milliseconds.
    pub fn scan_time_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.freq_mhz * 1e6) * 1e3
    }

    /// *Ideal AP* energy per symbol under a Cache Automaton mapping's
    /// activity (1 pJ/bit DRAM access, zero interconnect) — §5.3's
    /// comparison model.
    pub fn ideal_energy_per_symbol_nj(&self, stats: &ExecStats) -> f64 {
        ca_sim::ideal_ap_per_symbol_nj(stats, &EnergyParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_1_064_gbps() {
        let ap = ApModel::default();
        assert!((ap.throughput_gbps() - 1.064).abs() < 1e-9);
    }

    #[test]
    fn paper_speedups_follow() {
        let ap = ApModel::default();
        // CA_P 16 Gb/s and CA_S 9.6 Gb/s vs AP
        assert!((16.0 / ap.throughput_gbps() - 15.0).abs() < 0.1);
        assert!((9.6 / ap.throughput_gbps() - 9.0).abs() < 0.1);
    }

    #[test]
    fn rank_capacity() {
        assert_eq!(ApModel::default().rank_stes(), 384 * 1024);
    }

    #[test]
    fn scan_time_10mb() {
        // 10 MB at 133 MHz -> ~75 ms
        let ms = ApModel::default().scan_time_ms(10 * 1024 * 1024);
        assert!((ms - 78.8).abs() < 1.0, "{ms}");
    }

    #[test]
    fn ideal_energy_uses_activity() {
        let stats = ExecStats { symbols: 10, active_partition_cycles: 20, ..Default::default() };
        let nj = ApModel::default().ideal_energy_per_symbol_nj(&stats);
        // 2 active partitions/symbol x 256 pJ = 0.512 nJ
        assert!((nj - 0.512).abs() < 1e-9);
    }
}
