//! HARE and UAP ASIC models (paper §5.6, Table 5).
//!
//! The paper compares against the published numbers of these accelerators
//! on Dotstar0.9 (1000 regexes, ~38 K states, 10 MB input); we keep the
//! same constants but expose them as an executable model so the Table 5
//! harness can regenerate every cell.

/// An ASIC regex/automata accelerator characterized by published constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicModel {
    /// Name as printed in Table 5.
    pub name: &'static str,
    /// Sustained scan throughput, Gbit/s.
    pub throughput_gbps: f64,
    /// Power, watts.
    pub power_w: f64,
    /// Energy per scanned byte, nJ.
    pub energy_nj_per_byte: f64,
    /// Die area, mm^2.
    pub area_mm2: f64,
    /// Patterns the design scans at full rate (HARE saturates at 16).
    pub full_rate_patterns: usize,
}

/// HARE with 32 accelerator ways (Gogte et al., MICRO 2016).
pub const HARE: AsicModel = AsicModel {
    name: "HARE (W=32)",
    throughput_gbps: 3.9,
    power_w: 125.0,
    energy_nj_per_byte: 256.0,
    area_mm2: 80.0,
    full_rate_patterns: 16,
};

/// The Unified Automata Processor (Fang et al., MICRO 2015).
pub const UAP: AsicModel = AsicModel {
    name: "UAP",
    throughput_gbps: 5.3,
    power_w: 0.507,
    energy_nj_per_byte: 0.802,
    area_mm2: 5.67,
    full_rate_patterns: 1000,
};

impl AsicModel {
    /// Time to scan `bytes`, milliseconds.
    pub fn scan_time_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / (self.throughput_gbps * 1e9) * 1e3
    }

    /// Total energy to scan `bytes`, millijoules.
    pub fn scan_energy_mj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_nj_per_byte * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB10: u64 = 10 * 1024 * 1024;

    #[test]
    fn table5_runtimes() {
        // Paper Table 5: HARE 20.48 ms, UAP 15.83 ms for the 10 MB stream.
        assert!((HARE.scan_time_ms(MB10) - 21.5).abs() < 1.2);
        assert!((UAP.scan_time_ms(MB10) - 15.83).abs() < 1.0);
    }

    #[test]
    fn energy_scales_with_bytes() {
        assert!(HARE.scan_energy_mj(MB10) > UAP.scan_energy_mj(MB10) * 100.0);
        assert_eq!(UAP.scan_energy_mj(0), 0.0);
    }

    #[test]
    fn constants_match_table5() {
        assert_eq!(HARE.power_w, 125.0);
        assert_eq!(HARE.area_mm2, 80.0);
        assert_eq!(UAP.throughput_gbps, 5.3);
        assert_eq!(UAP.area_mm2, 5.67);
    }
}
