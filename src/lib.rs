//! Workspace umbrella for the Cache Automaton reproduction.
//!
//! This crate only hosts the runnable examples (`examples/`) and the
//! workspace-level integration tests (`tests/`); the public API lives in
//! the [`cache_automaton`] crate and its layers:
//!
//! * [`cache_automaton`] — compile-and-run façade,
//! * [`ca_automata`] — NFA toolchain,
//! * [`ca_partition`] — multilevel k-way graph partitioner,
//! * [`ca_sim`] — fabric simulator + timing/energy/area models,
//! * [`ca_compiler`] — mapping compiler,
//! * [`ca_workloads`] — benchmark synthesizers,
//! * [`ca_baselines`] — AP / HARE / UAP / CPU baselines.

pub use ca_automata;
pub use ca_baselines;
pub use ca_compiler;
pub use ca_partition;
pub use ca_sim;
pub use ca_workloads;
pub use cache_automaton;
