//! Workspace-level pipeline tests: the full public flow (regex/ANML in,
//! matches + architectural report out) plus cross-format round-trips.

use ca_automata::anml::{parse_anml, to_anml};
use ca_automata::engine::{Engine, SparseEngine};
use cache_automaton::{CaError, CacheAutomaton, Design, ReportCode};

#[test]
fn regex_to_report_end_to_end() {
    let program =
        CacheAutomaton::new().compile_patterns(&["err(or)?", "warn(ing)?", "panic"]).unwrap();
    let input = b"warn: minor\nerror: major\npanic: fatal\n";
    let report = program.run(input);
    let codes: Vec<u32> = report.matches.iter().map(|m| m.code.0).collect();
    assert!(codes.contains(&0) && codes.contains(&1) && codes.contains(&2));
    assert_eq!(report.exec.symbols, input.len() as u64);
    assert!(report.exec.cycles >= report.exec.symbols);
    assert!(report.energy.per_symbol_nj > 0.0);
    assert!(report.energy.avg_power_w > 0.0);
}

#[test]
fn anml_roundtrip_through_the_full_stack() {
    // regex -> NFA -> ANML text -> NFA -> compile -> fabric == CPU
    let nfa = ca_automata::regex::compile_patterns(&["ab?c", "x[yz]{2}"]).unwrap();
    let text = to_anml(&nfa, "roundtrip");
    let back = parse_anml(&text).unwrap();
    assert_eq!(back, nfa);
    let program = CacheAutomaton::new().compile_anml(&text).unwrap();
    let input = b"abc ac xyz xzy";
    let mut expect = SparseEngine::new(&nfa).run(input);
    let mut got = program.run(input).matches;
    expect.sort();
    got.sort();
    assert_eq!(expect, got);
}

#[test]
fn report_codes_are_pattern_indices() {
    let program = CacheAutomaton::new().compile_patterns(&["one", "two", "three"]).unwrap();
    let report = program.run(b"three two one");
    let mut codes: Vec<ReportCode> = report.matches.iter().map(|m| m.code).collect();
    codes.sort();
    assert_eq!(codes, vec![ReportCode(0), ReportCode(1), ReportCode(2)]);
}

#[test]
fn capacity_errors_surface_cleanly() {
    // A single-slice CA_P holds 16K STEs; 30K states cannot fit.
    let patterns: Vec<String> = (0..2000).map(|i| format!("pattern{i:05}xyzw")).collect();
    let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
    let err = CacheAutomaton::builder()
        .design(Design::Performance)
        .slices(1)
        .build()
        .compile_patterns(&refs)
        .unwrap_err();
    match err {
        CaError::Compile(e) => assert!(e.to_string().contains("partitions")),
        other => panic!("wrong error kind: {other}"),
    }
}

#[test]
fn empty_input_and_single_symbol() {
    let program = CacheAutomaton::new().compile_patterns(&["q"]).unwrap();
    let empty = program.run(b"");
    assert!(empty.matches.is_empty());
    assert_eq!(empty.exec.cycles, 0);
    let one = program.run(b"q");
    assert_eq!(one.matches.len(), 1);
    assert_eq!(one.matches[0].pos, 0);
}

#[test]
fn long_stream_throughput_approaches_design_peak() {
    let program = CacheAutomaton::new().compile_patterns(&["zebra"]).unwrap();
    let input = vec![b'a'; 1 << 20];
    let report = program.run(&input);
    let peak = program.throughput_gbps();
    let achieved = report.achieved_gbps();
    assert!(
        (peak - achieved) / peak < 1e-4,
        "pipeline fill should be negligible over 1 MiB: {achieved} vs {peak}"
    );
}

#[test]
fn simulated_time_matches_frequency() {
    let program =
        CacheAutomaton::builder().design(Design::Space).build().compile_patterns(&["abc"]).unwrap();
    let report = program.run(&vec![b'x'; 12_000]);
    // 12_000 symbols + 2 fill cycles at 1.2 GHz
    let expect = 12_002.0 / 1.2e9;
    assert!((report.simulated_seconds - expect).abs() / expect < 1e-9);
}
