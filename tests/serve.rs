//! Workspace-level tests for the multi-stream scan service: a [`ScanPool`]
//! multiplexing K logical streams over N workers and a bounded fabric pool
//! must report, per stream, exactly what a dedicated `Scanner` session
//! over the same chunks reports — whatever the interleaving, worker count,
//! or fabric contention — and must fail typed (never panic) under
//! backpressure, mid-stream shutdown, and abort.

use ca_telemetry::MemoryRecorder;
use ca_workloads::{Benchmark, Scale};
use cache_automaton::{CaError, CacheAutomaton, Optimize, PoolOptions, ScanPool};
use std::sync::Arc;

/// Chunks `input` into deterministic, irregular pieces seeded by `salt` so
/// boundaries land mid-pattern differently per stream.
fn chunks_of(input: &[u8], salt: u64) -> Vec<&[u8]> {
    let sizes = [7usize, 64, 3, 1000, 129, 1, 512];
    let mut out = Vec::new();
    let mut offset = 0usize;
    let mut i = salt as usize;
    while offset < input.len() {
        let len = sizes[i % sizes.len()].min(input.len() - offset);
        out.push(&input[offset..offset + len]);
        offset += len;
        i += 1;
    }
    out
}

/// Feeds `streams[i]`'s chunks through `pool` with a round-robin
/// interleave and returns each stream's final report; the serial
/// references are computed with per-stream `Scanner` sessions over the
/// *same* chunks.
fn differential(
    pool: &ScanPool,
    program: &cache_automaton::Program,
    streams: &[Vec<u8>],
    context: &str,
) {
    let mut handles: Vec<_> = streams.iter().map(|_| Some(pool.open_stream().unwrap())).collect();
    let chunked: Vec<Vec<&[u8]>> =
        streams.iter().enumerate().map(|(i, s)| chunks_of(s, i as u64)).collect();
    // Round-robin interleave: one chunk per stream per round, so every
    // stream is mid-flight at once and the DRR ring stays populated.
    let rounds = chunked.iter().map(|c| c.len()).max().unwrap_or(0);
    for round in 0..rounds {
        for (i, chunks) in chunked.iter().enumerate() {
            if let Some(chunk) = chunks.get(round) {
                handles[i].as_mut().unwrap().feed(chunk).unwrap();
            }
        }
    }
    for (i, handle) in handles.iter_mut().enumerate() {
        let report = handle.take().unwrap().finish().unwrap();
        let mut scanner = program.scanner();
        for chunk in &chunked[i] {
            scanner.feed(chunk);
        }
        let reference = scanner.finish();
        assert_eq!(report.matches, reference.matches, "{context}: stream {i} matches");
        assert_eq!(report.exec, reference.exec, "{context}: stream {i} exec");
        assert_eq!(
            report.simulated_seconds, reference.simulated_seconds,
            "{context}: stream {i} simulated time"
        );
    }
}

#[test]
fn pool_streams_match_serial_scanner_sessions_across_workers() {
    // K x workers matrix on one representative benchmark; every stream
    // gets a distinct input so cross-stream state leakage would show.
    let w = Benchmark::Snort.build(Scale::tiny(), 17);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    for workers in 1..=4usize {
        for k in [1usize, 4, 16, 64] {
            let streams: Vec<Vec<u8>> =
                (0..k).map(|i| w.input(256 + (i * 97) % 2048, 1000 + i as u64)).collect();
            let pool = ScanPool::new(
                &program,
                PoolOptions { workers, quantum: 256, ..PoolOptions::default() },
            )
            .unwrap();
            differential(&pool, &program, &streams, &format!("{k} streams x{workers} workers"));
            pool.shutdown().unwrap();
        }
    }
}

#[test]
fn pool_streams_match_serial_on_every_benchmark() {
    // All ANMLZoo-style benchmarks at a fixed 4x2 configuration.
    let ca = CacheAutomaton::builder().optimize(Optimize::Never).build();
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), 29);
        let program = ca.compile_nfa(&w.nfa).unwrap_or_else(|e| panic!("{benchmark}: {e}"));
        let streams: Vec<Vec<u8>> = (0..4).map(|i| w.input(2048, 40 + i)).collect();
        let pool = ScanPool::new(
            &program,
            PoolOptions { workers: 2, quantum: 512, ..PoolOptions::default() },
        )
        .unwrap();
        differential(&pool, &program, &streams, &format!("{benchmark}"));
        pool.shutdown().unwrap();
    }
}

#[test]
fn single_shared_fabric_is_recycled_across_streams() {
    // max_fabrics = 1 under 4 workers: every batch of every stream goes
    // through the same recycled instance, so any state leaking across
    // `Fabric::reset` would corrupt the differential.
    let w = Benchmark::ClamAv.build(Scale::tiny(), 7);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let streams: Vec<Vec<u8>> = (0..8).map(|i| w.input(1024, 70 + i)).collect();
    let pool = ScanPool::new(
        &program,
        PoolOptions { workers: 4, max_fabrics: 1, quantum: 128, ..PoolOptions::default() },
    )
    .unwrap();
    differential(&pool, &program, &streams, "shared-fabric pool");
    pool.shutdown().unwrap();
}

#[test]
fn backpressure_blocks_feeders_without_losing_data() {
    let recorder = Arc::new(MemoryRecorder::new());
    let telemetry = cache_automaton::Telemetry::from_arc(recorder.clone());
    let ca = CacheAutomaton::builder().telemetry_handle(telemetry).build();
    let w = Benchmark::Snort.build(Scale::tiny(), 11);
    let program = ca.compile_nfa(&w.nfa).unwrap();
    let input = w.input(64 * 1024, 13);
    let reference = program.run(&input);

    // A 64-byte queue bound against 64 KiB of input: the feeder can only
    // be admitted into an empty queue, so it must stall whenever the
    // single worker has not fully drained between two feeds — with 1024
    // chunks (and fabric construction on the first batch) that is
    // effectively every round.
    let pool = ScanPool::new(
        &program,
        PoolOptions { workers: 1, queue_bytes: 64, quantum: 64, ..PoolOptions::default() },
    )
    .unwrap();
    let mut stream = pool.open_stream().unwrap();
    for chunk in input.chunks(64) {
        stream.feed(chunk).unwrap();
    }
    let report = stream.finish().unwrap();
    assert_eq!(report.matches, reference.matches);
    assert_eq!(report.exec, reference.exec);
    assert_eq!(recorder.counter("serve.fed_bytes"), input.len() as u64);
    assert!(
        recorder.counter("serve.backpressure_stalls") > 0,
        "a 256-byte bound must have stalled the feeder at least once"
    );
    pool.shutdown().unwrap();
}

#[test]
fn incremental_matches_arrive_before_finish() {
    let program = CacheAutomaton::new().compile_patterns(&["ab"]).unwrap();
    let pool = ScanPool::new(&program, PoolOptions::default()).unwrap();
    let mut stream = pool.open_stream().unwrap();
    let mut delivered = Vec::new();
    for chunk in [&b"xxab"[..], b"xxxxab", b"abxx"] {
        stream.feed(chunk).unwrap();
        delivered.extend(stream.poll_matches());
    }
    let report = stream.finish().unwrap();
    assert!(delivered.len() <= report.matches.len());
    assert_eq!(report.matches.len(), 3);
    // Everything delivered incrementally appears in the final report.
    for event in &delivered {
        assert!(report.matches.contains(event), "{event:?} lost between poll and finish");
    }
    pool.shutdown().unwrap();
}

#[test]
fn empty_chunk_feed_is_a_no_op() {
    let program = CacheAutomaton::new().compile_patterns(&["needle"]).unwrap();
    let pool = ScanPool::new(&program, PoolOptions::default()).unwrap();

    // Interleaving empty chunks changes nothing.
    let mut with_empties = pool.open_stream().unwrap();
    let mut plain = pool.open_stream().unwrap();
    with_empties.feed(b"").unwrap();
    with_empties.feed(b"xxneed").unwrap();
    with_empties.feed(b"").unwrap();
    with_empties.feed(b"lexx").unwrap();
    with_empties.feed(b"").unwrap();
    plain.feed(b"xxneed").unwrap();
    plain.feed(b"lexx").unwrap();
    let a = with_empties.finish().unwrap();
    let b = plain.finish().unwrap();
    assert_eq!(a.matches, b.matches);
    assert_eq!(a.exec, b.exec);

    // A stream fed only empty chunks reports zero work, like an unfed one.
    let mut empty_only = pool.open_stream().unwrap();
    empty_only.feed(b"").unwrap();
    let report = empty_only.finish().unwrap();
    assert!(report.matches.is_empty());
    assert_eq!(report.exec.cycles, 0);
    assert_eq!(report.simulated_seconds, 0.0);
    pool.shutdown().unwrap();
}

#[test]
fn shutdown_drains_queued_work_then_rejects_new_input() {
    let w = Benchmark::Brill.build(Scale::tiny(), 3);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let input = w.input(8 * 1024, 5);
    let reference = program.run(&input);

    let pool =
        ScanPool::new(&program, PoolOptions { workers: 2, quantum: 512, ..PoolOptions::default() })
            .unwrap();
    let mut stream = pool.open_stream().unwrap();
    for chunk in input.chunks(700) {
        stream.feed(chunk).unwrap();
    }
    // Shut down with chunks still queued: drain must process all of them.
    pool.shutdown().unwrap();
    let report = stream.finish().unwrap();
    assert_eq!(report.matches, reference.matches);
    assert_eq!(report.exec, reference.exec);
}

#[test]
fn feed_and_open_fail_typed_after_shutdown() {
    let program = CacheAutomaton::new().compile_patterns(&["x"]).unwrap();
    let pool = ScanPool::new(&program, PoolOptions::default()).unwrap();
    let mut stream = pool.open_stream().unwrap();
    pool.shutdown().unwrap();
    let err = stream.feed(b"abc").unwrap_err();
    assert!(matches!(err, CaError::Config(_)), "{err}");
    // The unfed stream still finishes cleanly with a zero-work report.
    assert_eq!(stream.finish().unwrap().exec.cycles, 0);
}

#[test]
fn abort_discards_queued_work_with_typed_errors() {
    let w = Benchmark::Levenshtein.build(Scale::tiny(), 19);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    // Queue a megabyte and abort immediately: the single worker (which
    // still has to build its first fabric) cannot plausibly have scanned
    // it all, so discarded bytes — and the typed error — are guaranteed.
    let input = w.input(1024 * 1024, 23);
    let pool = ScanPool::new(
        &program,
        PoolOptions {
            workers: 1,
            quantum: 4096,
            queue_bytes: 2 * 1024 * 1024,
            ..PoolOptions::default()
        },
    )
    .unwrap();
    let mut stream = pool.open_stream().unwrap();
    for chunk in input.chunks(64 * 1024) {
        stream.feed(chunk).unwrap();
    }
    pool.abort().unwrap();
    let err = stream.finish().unwrap_err();
    assert!(matches!(err, CaError::Internal(_)), "{err}");
}

#[test]
fn dropping_an_unfinished_stream_does_not_wedge_the_pool() {
    let program = CacheAutomaton::new().compile_patterns(&["ab"]).unwrap();
    let pool =
        ScanPool::new(&program, PoolOptions { workers: 2, ..PoolOptions::default() }).unwrap();
    {
        let mut abandoned = pool.open_stream().unwrap();
        abandoned.feed(b"abababab").unwrap();
        // dropped without finish()
    }
    let mut survivor = pool.open_stream().unwrap();
    survivor.feed(b"xxabxx").unwrap();
    assert_eq!(survivor.finish().unwrap().matches.len(), 1);
    assert_eq!(pool.live_streams(), 0);
    pool.shutdown().unwrap();
}

#[test]
fn pool_rejects_degenerate_configurations() {
    let program = CacheAutomaton::new().compile_patterns(&["x"]).unwrap();
    for options in [
        PoolOptions { workers: 0, ..PoolOptions::default() },
        PoolOptions { queue_bytes: 0, ..PoolOptions::default() },
        PoolOptions { quantum: 0, ..PoolOptions::default() },
    ] {
        let err = ScanPool::new(&program, options).map(|_| ()).unwrap_err();
        assert!(matches!(err, CaError::Config(_)), "{err}");
    }
}

#[test]
fn pool_telemetry_gauges_and_counters_flow() {
    let recorder = Arc::new(MemoryRecorder::new());
    let telemetry = cache_automaton::Telemetry::from_arc(recorder.clone());
    let ca = CacheAutomaton::builder().telemetry_handle(telemetry).build();
    let program = ca.compile_patterns(&["needle"]).unwrap();
    let pool =
        ScanPool::new(&program, PoolOptions { workers: 2, ..PoolOptions::default() }).unwrap();
    let mut a = pool.open_stream().unwrap();
    let mut b = pool.open_stream().unwrap();
    a.feed(b"a needle in a haystack").unwrap();
    b.feed(b"no hits").unwrap();
    let _ = a.finish().unwrap();
    let _ = b.finish().unwrap();
    pool.shutdown().unwrap();

    assert_eq!(recorder.counter("serve.fed_bytes"), 22 + 7);
    let live = recorder.gauges("serve.live_streams");
    assert!(live.iter().any(|s| s.value == 2.0), "two streams were live at once: {live:?}");
    assert!(live.last().unwrap().value == 0.0, "all streams closed at the end");
    assert!(!recorder.gauges("serve.queue_depth").is_empty());
    assert!(!recorder.gauges("serve.batch_size").is_empty());
    assert!(!recorder.gauges("serve.pool_occupancy").is_empty());
}
