//! Workspace-level tests for the serving daemon: a scan that travels the
//! wire — chunked arbitrarily, multiplexed with dozens of concurrent
//! connections, interrupted by hot reloads — must report exactly what a
//! dedicated serial [`Scanner`](cache_automaton::Scanner) session reports
//! over the same bytes, and a daemon must survive thousands of
//! short-lived streams without leaking pool slots or dropping matches.

use cache_automaton::{CacheAutomaton, Client, Daemon, DaemonOptions, PoolOptions, Program};

const RULES: &str = "needle\nab\nrain|spain\n";

fn reference_program() -> Program {
    cache_automaton::serve::daemon::compile_rules(&CacheAutomaton::new(), RULES).unwrap()
}

/// A deterministic input salted per stream so match positions differ
/// between streams.
fn salted_input(salt: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        match state % 11 {
            0 => out.extend_from_slice(b"needle"),
            1 => out.extend_from_slice(b"ab"),
            2 => out.extend_from_slice(b"the rain in spain"),
            3 => out.extend_from_slice(b"nee"),
            4 => out.extend_from_slice(b"dle"),
            _ => out.push(b'a' + (state % 26) as u8),
        }
    }
    out.truncate(len);
    out
}

fn serial_reference(program: &Program, input: &[u8]) -> cache_automaton::RunReport {
    let mut scanner = program.scanner();
    scanner.feed(input);
    scanner.finish()
}

fn daemon_on_tcp(workers: usize) -> Daemon {
    let options = DaemonOptions { pool: PoolOptions { workers, ..PoolOptions::default() } };
    Daemon::bind(&CacheAutomaton::new(), RULES, "127.0.0.1:0", options).unwrap()
}

/// The wire report must be *identical* to the serial scanner's — events
/// and exec stats, bit for bit — whatever the chunking, because chunk
/// boundaries are invisible to the automaton and the daemon adds none of
/// its own.
#[test]
fn wire_report_is_identical_to_serial_for_any_chunking() {
    let program = reference_program();
    let input = salted_input(7, 3000);
    let reference = serial_reference(&program, &input);
    assert!(reference.matches.len() > 10, "input must actually contain matches");

    let daemon = daemon_on_tcp(2);
    let mut client = Client::connect(&daemon.local_addr()).unwrap();
    for chunk_size in [1usize, 3, 7, 64, 129, 1000, input.len()] {
        let (stream, _) = client.open_stream().unwrap();
        let mut polled = Vec::new();
        for chunk in input.chunks(chunk_size) {
            client.feed(stream, chunk).unwrap();
            // Interleave polls so incremental delivery is exercised too.
            polled.extend(client.poll_matches(stream).unwrap());
        }
        let report = client.finish(stream).unwrap();
        assert_eq!(report.events, reference.matches, "chunk size {chunk_size}");
        assert_eq!(report.exec, reference.exec, "chunk size {chunk_size}: exec must be identical");
        // Polled events are a prefix of the final ordered list: polling
        // must never invent or double-deliver.
        assert!(
            polled.len() <= report.events.len(),
            "chunk size {chunk_size}: polled {} of {}",
            polled.len(),
            report.events.len()
        );
        for event in &polled {
            assert!(report.events.contains(event), "chunk size {chunk_size}");
        }
    }
    drop(client);
    daemon.shutdown().unwrap();
}

/// 64 concurrent connections, each with its own differently-salted
/// stream and chunking, all multiplexed over 4 workers — every one must
/// match its serial reference exactly.
#[test]
fn sixty_four_concurrent_connections_match_serial() {
    let program = reference_program();
    let daemon = daemon_on_tcp(4);
    let addr = daemon.local_addr();

    std::thread::scope(|scope| {
        for salt in 0..64u64 {
            let program = &program;
            let addr = &addr;
            scope.spawn(move || {
                let input = salted_input(salt, 1500 + (salt as usize) * 13);
                let reference = serial_reference(program, &input);
                let mut client = Client::connect(addr).unwrap();
                let (stream, _) = client.open_stream().unwrap();
                let chunk = 1 + (salt as usize % 200);
                for piece in input.chunks(chunk) {
                    client.feed(stream, piece).unwrap();
                }
                let report = client.finish(stream).unwrap();
                assert_eq!(report.events, reference.matches, "salt {salt}");
                assert_eq!(report.exec, reference.exec, "salt {salt}");
            });
        }
    });

    let stats = daemon.stats();
    assert_eq!(stats.streams_served, 64);
    assert_eq!(stats.live_streams, 0, "every pool slot must be released");
    daemon.shutdown().unwrap();
}

/// Hot reload under load: streams opened before the swap drain on the old
/// generation with zero dropped matches; streams opened after bind the
/// new one. Reloading to an *identical* program (empty RELOAD payload)
/// must be observationally invisible apart from the generation bump.
#[test]
fn reload_under_load_drops_no_matches() {
    let program = reference_program();
    let daemon = daemon_on_tcp(2);
    let addr = daemon.local_addr();
    let input = salted_input(99, 4000);
    let reference = serial_reference(&program, &input);
    let half = input.len() / 2;

    let mut feeder = Client::connect(&addr).unwrap();
    let mut admin = Client::connect(&addr).unwrap();

    // Phase 1: streams in flight on generation 0, half fed.
    let mut in_flight = Vec::new();
    for _ in 0..8 {
        let (stream, generation) = feeder.open_stream().unwrap();
        assert_eq!(generation, 0);
        for chunk in input[..half].chunks(173) {
            feeder.feed(stream, chunk).unwrap();
        }
        in_flight.push(stream);
    }

    // Reload to an identical program while they are mid-stream.
    assert_eq!(admin.reload(None).unwrap(), 1);
    assert_eq!(admin.stats().unwrap().generation, 1);

    // Phase 2: the old streams keep feeding and must drain losslessly.
    for &stream in &in_flight {
        for chunk in input[half..].chunks(211) {
            feeder.feed(stream, chunk).unwrap();
        }
    }
    for stream in in_flight {
        let report = feeder.finish(stream).unwrap();
        assert_eq!(report.events, reference.matches, "stream spanning the reload");
        assert_eq!(report.exec, reference.exec);
    }

    // Streams opened after the swap bind generation 1 and behave
    // identically (the program is the same).
    let (stream, generation) = feeder.open_stream().unwrap();
    assert_eq!(generation, 1);
    feeder.feed(stream, &input).unwrap();
    let report = feeder.finish(stream).unwrap();
    assert_eq!(report.events, reference.matches);

    // Now a reload that *changes* the rules: old-generation stream keeps
    // its old program to the end.
    let (old_stream, old_gen) = feeder.open_stream().unwrap();
    assert_eq!(old_gen, 1);
    feeder.feed(old_stream, &input[..half]).unwrap();
    assert_eq!(admin.reload(Some("zzzz9\n")).unwrap(), 2);
    feeder.feed(old_stream, &input[half..]).unwrap();
    let report = feeder.finish(old_stream).unwrap();
    assert_eq!(report.events, reference.matches, "in-flight stream must keep its rule set");
    let (new_stream, new_gen) = feeder.open_stream().unwrap();
    assert_eq!(new_gen, 2);
    feeder.feed(new_stream, &input).unwrap();
    let report = feeder.finish(new_stream).unwrap();
    assert!(report.events.is_empty(), "new rules match nothing in this input");

    let stats = admin.stats().unwrap();
    assert_eq!(stats.reloads, 2);
    drop(feeder);
    drop(admin);
    daemon.shutdown().unwrap();
}

/// Soak: thousands of short-lived streams across a set of connections on
/// a Unix socket. Exercises pool-slot recycling, per-connection stream
/// maps, and generation refcounts at volume.
#[test]
fn soak_thousands_of_short_lived_streams() {
    let program = reference_program();
    let dir = std::env::temp_dir().join(format!("ca-daemon-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("soak.sock");
    let addr = format!("unix:{}", sock.display());
    let options = DaemonOptions { pool: PoolOptions { workers: 4, ..PoolOptions::default() } };
    let daemon = Daemon::bind(&CacheAutomaton::new(), RULES, &addr, options).unwrap();

    const CONNECTIONS: u64 = 8;
    const STREAMS_PER_CONNECTION: u64 = 300;
    let expected: Vec<usize> = (0..4u64)
        .map(|salt| serial_reference(&program, &salted_input(salt, 120)).matches.len())
        .collect();

    std::thread::scope(|scope| {
        for conn in 0..CONNECTIONS {
            let addr = &addr;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..STREAMS_PER_CONNECTION {
                    let salt = (conn + i) % 4;
                    let input = salted_input(salt, 120);
                    let (stream, _) = client.open_stream().unwrap();
                    client.feed(stream, &input).unwrap();
                    let report = client.finish(stream).unwrap();
                    assert_eq!(
                        report.events.len(),
                        expected[salt as usize],
                        "conn {conn} stream {i}"
                    );
                }
            });
        }
    });

    let stats = daemon.stats();
    assert_eq!(stats.streams_served, CONNECTIONS * STREAMS_PER_CONNECTION);
    assert_eq!(stats.live_streams, 0, "no leaked pool slots after the soak");
    daemon.shutdown().unwrap();
    assert!(!sock.exists(), "socket file must be unlinked at shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Abandoning streams (dropping a connection without FINISH) must free
/// their pool slots so later streams are not starved.
#[test]
fn abandoned_connections_release_their_streams() {
    let daemon = daemon_on_tcp(1);
    let addr = daemon.local_addr();
    for _ in 0..20 {
        let mut client = Client::connect(&addr).unwrap();
        let (stream, _) = client.open_stream().unwrap();
        client.feed(stream, b"needle").unwrap();
        drop(client); // no FINISH
    }
    // If abandoned slots leaked, this would eventually block or fail.
    let mut client = Client::connect(&addr).unwrap();
    let (stream, _) = client.open_stream().unwrap();
    client.feed(stream, b"needle").unwrap();
    let report = client.finish(stream).unwrap();
    assert_eq!(report.events.len(), 1);
    drop(client);
    daemon.shutdown().unwrap();
}
