//! Workspace-level artifact and cache tests: every Table-1 benchmark, on
//! both design points, must survive a serialize → deserialize round trip
//! with a byte-identical bitstream and identical fabric behaviour, and the
//! program cache must hand back programs indistinguishable from a fresh
//! compile.

use ca_workloads::{Benchmark, Scale};
use cache_automaton::{CacheAutomaton, Design, Optimize, Program};

fn roundtrip_all(design: Design) {
    let ca = CacheAutomaton::builder().design(design).optimize(Optimize::Never).build();
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), 17);
        let program = ca.compile_nfa(&w.nfa).unwrap_or_else(|e| panic!("{benchmark}: {e}"));
        let bytes = program.to_bytes();
        let loaded = Program::from_bytes(&bytes).unwrap_or_else(|e| panic!("{benchmark}: {e}"));

        // lossless: same stats, byte-identical bitstream, canonical bytes
        assert_eq!(loaded.stats(), program.stats(), "{benchmark} stats diverged");
        assert_eq!(
            loaded.compiled().bitstream.encode(),
            program.compiled().bitstream.encode(),
            "{benchmark} bitstream not byte-identical after round trip"
        );
        assert_eq!(loaded.to_bytes(), bytes, "{benchmark} artifact not canonical");

        // behavioural equivalence: same matches AND same cycle counts
        let input = w.input(4 * 1024, 3);
        let fresh = program.run(&input);
        let reloaded = loaded.run(&input);
        assert_eq!(fresh.matches, reloaded.matches, "{benchmark} matches diverged");
        assert_eq!(fresh.exec.cycles, reloaded.exec.cycles, "{benchmark} cycles diverged");
        assert_eq!(
            fresh.exec.matched_total, reloaded.exec.matched_total,
            "{benchmark} activity diverged"
        );
    }
}

#[test]
fn artifact_roundtrip_every_benchmark_performance_design() {
    roundtrip_all(Design::Performance);
}

#[test]
fn artifact_roundtrip_every_benchmark_space_design() {
    roundtrip_all(Design::Space);
}

#[test]
fn artifact_file_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join("ca-workspace-artifact-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snort.capr");
    let w = Benchmark::Snort.build(Scale::tiny(), 41);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    program.save(&path).unwrap();
    let loaded = Program::load(&path).unwrap();
    assert_eq!(loaded.compiled(), program.compiled());
    let input = w.input(2 * 1024, 7);
    assert_eq!(program.run(&input).matches, loaded.run(&input).matches);
    std::fs::remove_file(&path).ok();
}

#[test]
fn cache_hit_returns_identical_program() {
    let ca = CacheAutomaton::builder().seed(7).build();
    let w = Benchmark::Dotstar.build(Scale::tiny(), 11);

    let first = ca.compile_nfa(&w.nfa).unwrap();
    let stats = ca.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.insertions), (0, 1, 1));

    let second = ca.compile_nfa(&w.nfa).unwrap();
    let stats = ca.cache_stats();
    assert_eq!(stats.hits, 1, "second compile of the same NFA must hit");

    // the hit is indistinguishable from the fresh compile
    assert_eq!(first.stats(), second.stats());
    assert_eq!(
        first.compiled().bitstream.encode(),
        second.compiled().bitstream.encode(),
        "cached bitstream must be byte-identical"
    );
    let input = w.input(2 * 1024, 5);
    let a = first.run(&input);
    let b = second.run(&input);
    assert_eq!(a.matches, b.matches);
    assert_eq!(a.exec.cycles, b.exec.cycles);
}

#[test]
fn cache_distinguishes_options() {
    // one shared cache, two NFAs and two seeds: four distinct keys
    let w1 = Benchmark::Ranges1.build(Scale::tiny(), 3);
    let w2 = Benchmark::ExactMatch.build(Scale::tiny(), 3);
    let ca = CacheAutomaton::builder().build();
    let _ = ca.compile_nfa(&w1.nfa).unwrap();
    let _ = ca.compile_nfa(&w2.nfa).unwrap();
    assert_eq!(ca.cache_stats().misses, 2, "different NFAs must not collide");

    let reseeded = CacheAutomaton::builder().seed(999).build();
    let a = ca.compile_nfa(&w1.nfa).unwrap();
    let b = reseeded.compile_nfa(&w1.nfa).unwrap();
    assert_eq!(ca.cache_stats().hits, 1, "same NFA + options must hit");
    assert_eq!(reseeded.cache_stats().misses, 1, "different seed is a different key");
    assert_eq!(a.stats().seed, 0xca);
    assert_eq!(b.stats().seed, 999);
}

#[test]
fn clones_share_the_cache() {
    let ca = CacheAutomaton::builder().build();
    let clone = ca.clone();
    let w = Benchmark::Protomata.build(Scale::tiny(), 29);
    let _ = ca.compile_nfa(&w.nfa).unwrap();
    let _ = clone.compile_nfa(&w.nfa).unwrap();
    assert_eq!(ca.cache_stats().hits, 1, "clone must see the original's compilation");
}

#[test]
fn identical_inputs_reproduce_bitstreams_byte_for_byte() {
    // determinism across independent CacheAutomaton instances (no shared
    // cache): the recorded seed pins the whole pipeline
    let w = Benchmark::Fermi.build(Scale::tiny(), 13);
    let a = CacheAutomaton::builder().seed(42).build().compile_nfa(&w.nfa).unwrap();
    let b = CacheAutomaton::builder().seed(42).build().compile_nfa(&w.nfa).unwrap();
    assert_eq!(a.to_bytes(), b.to_bytes(), "identical (NFA, options, seed) must reproduce");
    assert_eq!(a.stats().seed, 42);
}

#[test]
fn architecturally_corrupt_program_artifact_fails_at_load_not_mid_scan() {
    // Splice an architecturally invalid (duplicate report column) but
    // checksum-consistent bitstream into a program artifact: loading must
    // return a typed error rather than handing back a program that
    // panics once a scan reaches the ambiguous report column.
    let w = Benchmark::Snort.build(Scale::tiny(), 53);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let good = program.to_bytes();

    let mut bad_bs = program.compiled().bitstream.clone();
    let p = bad_bs
        .partitions
        .iter()
        .position(|p| !p.reports.is_empty())
        .expect("a compiled benchmark reports somewhere");
    let dup = bad_bs.partitions[p].reports[0];
    bad_bs.partitions[p].reports.push(dup);
    let bad_blob = bad_bs.encode();
    assert!(ca_sim::Bitstream::decode(&bad_blob).is_err(), "decode must reject the blob");

    // payload layout: [stats + state map][u64 blob length][blob at the end]
    let old_payload = &good[24..];
    let old_blob_len = program.compiled().bitstream.encode().len();
    let fixed_prefix = old_payload.len() - old_blob_len - 8;
    let mut payload = old_payload[..fixed_prefix].to_vec();
    payload.extend_from_slice(&(bad_blob.len() as u64).to_le_bytes());
    payload.extend_from_slice(&bad_blob);

    let mut bytes = good[..8].to_vec(); // magic + version + reserved
    bytes.extend_from_slice(&ca_sim::fnv1a_64(&payload).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let err = Program::from_bytes(&bytes).unwrap_err();
    assert!(
        err.to_string().contains("duplicate report column"),
        "load-time rejection should name the violation: {err}"
    );
}
