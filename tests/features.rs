//! Workspace integration tests for the extended feature set: binary
//! configuration pages, suspend/resume, floorplan timing, system sharing,
//! match utilities, Aho–Corasick cross-checks and tracing.

use ca_automata::engine::{Engine, SparseEngine};
use ca_baselines::AhoCorasick;
use ca_sim::{
    emit_pages, load_pages, sharing_report, ConfigImage, Fabric, Floorplan, RunOptions,
    SystemConfig, TimingParams,
};
use ca_workloads::{Benchmark, Scale};
use cache_automaton::{matches, CacheAutomaton};

#[test]
fn config_pages_roundtrip_for_compiled_benchmarks() {
    for benchmark in [Benchmark::Bro217, Benchmark::Levenshtein, Benchmark::Spm] {
        let w = benchmark.build(Scale::tiny(), 7);
        let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
        let bs = &program.compiled().bitstream;
        let image = emit_pages(bs);
        // byte-level roundtrip
        let bytes = image.to_capg_bytes();
        let image2 = ConfigImage::from_capg_bytes(&bytes).unwrap();
        assert_eq!(image2, image, "{benchmark}: capg bytes diverged");
        // behavioural roundtrip
        let reloaded = load_pages(&image2).unwrap();
        let input = w.input(8 * 1024, 3);
        let a = Fabric::new(bs).unwrap().run(&input);
        let b = Fabric::new(&reloaded).unwrap().run(&input);
        assert_eq!(a.events, b.events, "{benchmark}: reload changed behaviour");
        // config time is sane
        assert!(image.config_time_ms() < 1.0, "{benchmark}");
    }
}

#[test]
fn chunked_scans_equal_whole_scans_on_benchmarks() {
    for benchmark in [Benchmark::Snort, Benchmark::Hamming] {
        let w = benchmark.build(Scale::tiny(), 13);
        let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
        let input = w.input(8 * 1024, 5);
        let whole = program.compiled().fabric().unwrap().run(&input);
        // scan in 1 KiB chunks with resume
        let mut fabric = program.compiled().fabric().unwrap();
        let mut resume = None;
        let mut stitched = Vec::new();
        for chunk in input.chunks(1024) {
            let r = fabric.run_with(chunk, &RunOptions { resume, ..Default::default() }).unwrap();
            stitched.extend(r.events);
            resume = r.snapshot;
        }
        assert_eq!(stitched, whole.events, "{benchmark}: chunking changed matches");
    }
}

#[test]
fn floorplan_and_system_models_are_consistent() {
    let fp = Floorplan::default();
    let geom = ca_sim::CacheGeometry::for_design(ca_sim::DesignKind::Performance, 1);
    let t = fp.mapping_timing(ca_sim::DesignKind::Performance, &TimingParams::default(), &[]);
    // mapping-aware timing can differ from the fixed model, but state-match
    // must be identical and the frequency in the same band
    let fixed = ca_sim::design_timing(ca_sim::DesignKind::Performance);
    assert_eq!(t.state_match_ps, fixed.state_match_ps);
    assert!((t.max_freq_ghz() - fixed.max_freq_ghz()).abs() < 0.5);
    // sharing report: the paper's 12-way cache remainder and TDP headroom
    let geom8 = ca_sim::CacheGeometry::for_design(ca_sim::DesignKind::Performance, 8);
    let r = sharing_report(&geom8, &SystemConfig::default(), ca_sim::DesignKind::Performance, 2.0);
    assert_eq!(r.cache_ways_remaining, 12);
    assert!(r.fits_tdp);
    let _ = geom;
}

#[test]
fn match_utilities_agree_with_raw_stream() {
    let program = CacheAutomaton::new().compile_patterns(&["err", "warn"]).unwrap();
    let log = b"ok\nerr here\nwarn err\nnothing\n";
    let report = program.run(log);
    let counts = matches::count_by_code(&report.matches, 2);
    assert_eq!(counts, vec![2, 1]);
    let lines = matches::group_by_line(log, &report.matches);
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0].line, 1);
    assert_eq!(lines[1].line, 2);
    assert_eq!(lines[1].codes.len(), 2);
    let first = matches::first_by_code(&report.matches, 2);
    assert_eq!(first[0], Some(5)); // "err" ends at byte 5
    let throttled = matches::throttle(&report.matches, 1_000_000);
    assert_eq!(throttled.len(), 2); // one per code
}

#[test]
fn aho_corasick_agrees_with_fabric_on_literal_benchmark() {
    // ExactMatch is a pure-literal workload: AC, the NFA engine and the
    // compiled fabric must agree event for event.
    let w = Benchmark::ExactMatch.build(Scale::tiny(), 19);
    let input = w.input(16 * 1024, 3);
    // extract the literal patterns back out of the automaton? Not needed:
    // compare fabric vs sparse (already covered) and AC vs sparse on a
    // shared dictionary compiled both ways.
    let patterns: Vec<String> = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        ca_workloads::patterns::exact_match_patterns(&mut rng, 40)
    };
    let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
    let nfa = ca_automata::regex::compile_patterns(&refs).unwrap();
    let ac = AhoCorasick::new(&patterns.iter().map(String::as_bytes).collect::<Vec<_>>());
    let program = CacheAutomaton::new().compile_nfa(&nfa).unwrap();
    let mut via_ac = ac.scan(&input);
    let mut via_nfa = SparseEngine::new(&nfa).run(&input);
    let mut via_fabric = program.run(&input).matches;
    via_ac.sort();
    via_ac.dedup();
    via_nfa.sort();
    via_fabric.sort();
    assert_eq!(via_ac, via_nfa);
    assert_eq!(via_nfa, via_fabric);
    let _ = w;
}

#[test]
fn traced_run_is_equivalent_on_a_benchmark() {
    let w = Benchmark::Bro217.build(Scale::tiny(), 23);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let input = w.input(2 * 1024, 9);
    let plain = program.compiled().fabric().unwrap().run(&input);
    let mut sink = Vec::new();
    let traced = program
        .compiled()
        .fabric()
        .unwrap()
        .run_traced(&input, &RunOptions::default(), &mut sink)
        .unwrap();
    assert_eq!(plain.events, traced.events);
    assert_eq!(plain.stats.active_partition_cycles, traced.stats.active_partition_cycles);
    assert_eq!(String::from_utf8(sink).unwrap().lines().count(), input.len());
}
