//! End-to-end tests for the three-tier artifact cache: memory → disk →
//! remote, with the remote tier served by a real [`CacheServer`] over the
//! wire protocol.
//!
//! The fleet claim under test: one member compiles a rule set once and
//! pushes the artifact to the peer; every other member — even with a
//! machine-cold disk cache — warm-starts through the peer without a
//! single compiler pass, backfilling its own disk on the way so the
//! *next* start doesn't even need the network. A hostile peer that hands
//! back a corrupt artifact degrades to a counted recompile without
//! breaking the transport.

use cache_automaton::serve::proto::{read_frame, write_frame};
use cache_automaton::{CacheAutomaton, CacheServer, Frame, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique scratch directory per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ca-remotecache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn fleet_member(
    disk: &Path,
    peer: &str,
    recorder: &Arc<cache_automaton::MemoryRecorder>,
) -> CacheAutomaton {
    CacheAutomaton::builder()
        .disk_cache(disk)
        .remote_cache(peer)
        .telemetry_handle(Telemetry::from_arc(recorder.clone()))
        .build()
}

fn remote_stats(ca: &CacheAutomaton) -> cache_automaton::TierStats {
    ca.tier_stats()
        .into_iter()
        .find(|(name, _)| *name == "remote")
        .map(|(_, stats)| stats)
        .expect("a remote tier is configured")
}

#[test]
fn cold_fleet_member_warm_starts_through_the_peer() {
    let peer_dir = Scratch::new("peer");
    let disk_a = Scratch::new("member-a");
    let disk_b = Scratch::new("member-b");
    let server = CacheServer::bind("127.0.0.1:0", peer_dir.path()).unwrap();
    let addr = server.local_addr();
    let patterns = ["fleet.?wide", "warm[0-9]start"];

    // Member A: machine-cold everything. Compiles once, writes through to
    // its disk *and* the peer.
    let rec_a = Arc::new(cache_automaton::MemoryRecorder::new());
    let a = fleet_member(disk_a.path(), &addr, &rec_a);
    let reference = a.compile_patterns(&patterns).unwrap().to_bytes();
    assert_eq!(rec_a.counter("compile.compilations"), 1, "A pays the one compile");
    assert_eq!(remote_stats(&a).writes, 1, "A pushes the artifact to the peer");
    assert_eq!(server.stats().puts, 1);

    // Member B: a different "machine" — fresh instance, empty disk dir,
    // no shared memory tier. The artifact arrives over the wire; the
    // compiler never runs.
    let rec_b = Arc::new(cache_automaton::MemoryRecorder::new());
    let b = fleet_member(disk_b.path(), &addr, &rec_b);
    let warm = b.compile_patterns(&patterns).unwrap().to_bytes();
    assert_eq!(warm, reference, "peer round-trip is bit-identical");
    assert_eq!(rec_b.counter("compile.compilations"), 0, "B never compiles");
    assert_eq!(remote_stats(&b).hits, 1);
    assert_eq!(server.stats().hits, 1);

    // ...and B backfilled its own disk: a third start on B's machine
    // needs neither the compiler nor the network.
    drop(b);
    let rec_b2 = Arc::new(cache_automaton::MemoryRecorder::new());
    let b2 = CacheAutomaton::builder()
        .disk_cache(disk_b.path())
        .no_remote_cache()
        .telemetry_handle(Telemetry::from_arc(rec_b2.clone()))
        .build();
    assert_eq!(b2.compile_patterns(&patterns).unwrap().to_bytes(), reference);
    assert_eq!(rec_b2.counter("compile.compilations"), 0, "disk backfill made B self-sufficient");
    assert_eq!(rec_b2.counter("cache.disk.hits"), 1);

    server.shutdown().unwrap();
}

#[test]
fn scan_results_identical_with_and_without_the_fleet_tier() {
    let peer_dir = Scratch::new("peer-scan");
    let disk = Scratch::new("member-scan");
    let server = CacheServer::bind("127.0.0.1:0", peer_dir.path()).unwrap();
    let patterns = ["ab?c", "x[yz]+"];
    let input = b"abc xyzzy ac xz abxc";

    let plain = CacheAutomaton::new().compile_patterns(&patterns).unwrap().run(input);

    let rec = Arc::new(cache_automaton::MemoryRecorder::new());
    let seeded = fleet_member(disk.path(), &server.local_addr(), &rec);
    let _ = seeded.compile_patterns(&patterns).unwrap();
    drop(seeded);

    // A cold member loads the program over the wire and must report the
    // exact same matches as a locally compiled one.
    let rec_cold = Arc::new(cache_automaton::MemoryRecorder::new());
    let cold_disk = Scratch::new("member-scan-cold");
    let cold = fleet_member(cold_disk.path(), &server.local_addr(), &rec_cold);
    let fetched = cold.compile_patterns(&patterns).unwrap().run(input);
    assert_eq!(rec_cold.counter("compile.compilations"), 0);
    assert_eq!(fetched.matches, plain.matches);

    server.shutdown().unwrap();
}

/// A peer that answers every CACHE_GET with the same artifact bytes —
/// honest framing, attacker-controlled payload.
fn spawn_hostile_peer(artifact: Vec<u8>) -> (String, std::thread::JoinHandle<()>) {
    use std::io::Write as _;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        if let Ok((conn, _)) = listener.accept() {
            let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
            let mut writer = std::io::BufWriter::new(conn);
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                let reply = match frame {
                    Frame::CacheGet { .. } => Frame::CacheFound { artifact: artifact.clone() },
                    Frame::CachePut { .. } => Frame::CachePutOk,
                    _ => Frame::Error { code: 8, message: "unexpected frame".into() },
                };
                if write_frame(&mut writer, &reply).is_err() || writer.flush().is_err() {
                    break;
                }
            }
        }
    });
    (addr, handle)
}

#[test]
fn hostile_peer_corrupt_artifact_degrades_to_recompile_without_breaking_transport() {
    // A structurally valid artifact with one flipped byte: survives
    // framing, fails validation.
    let mut torn = CacheAutomaton::new().compile_patterns(&["hostile"]).unwrap().to_bytes();
    let mid = torn.len() / 2;
    torn[mid] ^= 0x40;
    let (addr, peer) = spawn_hostile_peer(torn);

    let rec = Arc::new(cache_automaton::MemoryRecorder::new());
    let ca = CacheAutomaton::builder()
        .remote_cache(&addr)
        .telemetry_handle(Telemetry::from_arc(rec.clone()))
        .build();

    // The poisoned fetch is quarantined client-side (validation rejects
    // it before it can ever be executed or written through) and the
    // compile falls back to a local pass.
    let program = ca.compile_patterns(&["hostile"]).unwrap();
    assert_eq!(program.run(b"a hostile peer").matches.len(), 1, "recompiled program works");
    assert_eq!(rec.counter("cache.remote.corrupt"), 1, "the bad artifact is counted");
    assert_eq!(rec.counter("compile.compilations"), 1, "one local compile covers the loss");

    // The transport survives: the tier is not broken, and the write-back
    // of the recompiled program still reaches the peer.
    let remote = remote_stats(&ca);
    assert_eq!(remote.errors, 0, "a corrupt payload is not a transport error");
    assert_eq!(remote.corrupt, 1);
    assert_eq!(remote.writes, 1, "the recompiled artifact is still pushed");

    drop(ca);
    peer.join().unwrap();
}
