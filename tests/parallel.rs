//! Workspace-level differential tests for the parallel sharded scan
//! pipeline and the streaming Scanner session: on every synthesized
//! benchmark and both design points, splitting the input — across threads
//! (`run_parallel`) or across time (`Scanner::feed`) — must reproduce the
//! serial `run` byte for byte.

use ca_telemetry::MemoryRecorder;
use ca_workloads::{Benchmark, Scale};
use cache_automaton::{CacheAutomaton, Design, Optimize, Parallelism, ScanOptions};
use std::sync::Arc;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn check_design(design: Design, build_seed: u64, input_seed: u64) {
    let ca = CacheAutomaton::builder().design(design).optimize(Optimize::Never).build();
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), build_seed);
        let input = w.input(8 * 1024, input_seed);
        let program = ca.compile_nfa(&w.nfa).unwrap_or_else(|e| panic!("{benchmark}: {e}"));
        let serial = program.run(&input);
        for shards in SHARD_COUNTS {
            let parallel = program
                .run_parallel(&input, Parallelism::Threads(shards))
                .unwrap_or_else(|e| panic!("{benchmark} x{shards}: {e}"));
            assert_eq!(
                parallel.matches, serial.matches,
                "{benchmark} diverged on {design} with {shards} shards"
            );
            // Differential stats invariants: the enumerative-correct stitch
            // reconstructs the serial run's activity exactly — every counter
            // except `cycles` must be EQUAL, and `cycles` (guess makespan +
            // correction reruns) can never exceed the serial scan.
            let p = &parallel.exec;
            let s = &serial.exec;
            let ctx = format!("{benchmark} on {design} with {shards} shards");
            assert_eq!(p.symbols, s.symbols, "{ctx}: symbols");
            assert_eq!(p.reports, s.reports, "{ctx}: reports");
            assert_eq!(p.matched_total, s.matched_total, "{ctx}: matched_total");
            assert_eq!(
                p.active_partition_cycles, s.active_partition_cycles,
                "{ctx}: active_partition_cycles"
            );
            assert_eq!(p.g1_signals, s.g1_signals, "{ctx}: g1_signals");
            assert_eq!(p.g4_signals, s.g4_signals, "{ctx}: g4_signals");
            assert_eq!(p.output_interrupts, s.output_interrupts, "{ctx}: output_interrupts");
            assert!(
                p.cycles <= s.cycles,
                "{ctx}: parallel cycles {} exceed serial {}",
                p.cycles,
                s.cycles
            );
        }
    }
}

#[test]
fn run_parallel_matches_serial_on_every_benchmark_performance_design() {
    check_design(Design::Performance, 17, 3);
}

#[test]
fn run_parallel_matches_serial_on_every_benchmark_space_design() {
    check_design(Design::Space, 23, 5);
}

#[test]
fn odd_shard_counts_and_uneven_stripes_agree() {
    // Stripe boundaries that don't divide the input evenly exercise the
    // one-byte-longer leading stripes and the boundary handoff at
    // unaligned offsets.
    let w = Benchmark::Snort.build(Scale::tiny(), 29);
    let input = w.input(8 * 1024 + 13, 19);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let serial = program.run(&input);
    for shards in [3usize, 5, 7, 11, 31] {
        let parallel = program.run_parallel(&input, Parallelism::Threads(shards)).unwrap();
        assert_eq!(parallel.matches, serial.matches, "{shards} shards diverged");
    }
}

#[test]
fn scanner_chunk_boundaries_landing_mid_match_are_invisible() {
    // Chunk sizes chosen so boundaries land inside pattern occurrences;
    // the session must carry the partial-match state across feed() calls.
    for benchmark in [Benchmark::Snort, Benchmark::Brill, Benchmark::Levenshtein] {
        let w = benchmark.build(Scale::tiny(), 37);
        let input = w.input(4 * 1024, 23);
        let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
        let serial = program.run(&input);
        for chunk in [1usize, 3, 7, 64, 1000] {
            let mut scanner = program.scanner();
            for piece in input.chunks(chunk) {
                scanner.feed(piece);
            }
            let report = scanner.finish();
            assert_eq!(report.matches, serial.matches, "{benchmark} chunk={chunk}");
            assert_eq!(report.exec, serial.exec, "{benchmark} chunk={chunk} stats");
        }
    }
}

#[test]
fn scan_options_resolve_auto_and_explicit_paths() {
    let w = Benchmark::Spm.build(Scale::tiny(), 43);
    let input = w.input(8 * 1024, 29);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let serial = program.run(&input);
    // Auto on an 8 KiB input (below the 64 KiB stripe floor) is serial.
    let auto = program.run_parallel(&input, Parallelism::Auto).unwrap();
    assert_eq!(auto.matches, serial.matches);
    assert_eq!(auto.exec.cycles, serial.exec.cycles);
    // Lowering the floor through ScanOptions turns sharding on.
    let mut options = ScanOptions::default();
    options.min_stripe_bytes = 1024;
    let sharded = program.run_with_options(&input, &options).unwrap();
    assert_eq!(sharded.matches, serial.matches);
}

#[test]
fn telemetry_counters_reconcile_with_exec_stats() {
    let recorder = Arc::new(MemoryRecorder::new());
    let telemetry = cache_automaton::Telemetry::from_arc(recorder.clone());
    let ca = CacheAutomaton::builder().telemetry_handle(telemetry).build();
    let w = Benchmark::Snort.build(Scale::tiny(), 11);
    let input = w.input(8 * 1024, 7);
    let program = ca.compile_nfa(&w.nfa).unwrap();

    // Compilation already left its footprint: one compilation counter and
    // at least one timed sample per mandatory pass.
    assert_eq!(recorder.counter("compile.compilations"), 1);
    for pass in ["plan", "place", "emit", "validate"] {
        assert!(
            !recorder.spans(&format!("compile.pass.{pass}")).is_empty(),
            "missing span for pass {pass}"
        );
    }

    // A serial scan's counters must equal its ExecStats field for field.
    let serial = program.run(&input);
    let s = &serial.exec;
    assert_eq!(recorder.counter("fabric.symbols"), s.symbols);
    assert_eq!(recorder.counter("fabric.cycles"), s.cycles);
    assert_eq!(recorder.counter("fabric.active_partition_cycles"), s.active_partition_cycles);
    assert_eq!(recorder.counter("fabric.matched_total"), s.matched_total);
    assert_eq!(recorder.counter("fabric.g1_signals"), s.g1_signals);
    assert_eq!(recorder.counter("fabric.g4_signals"), s.g4_signals);
    assert_eq!(recorder.counter("fabric.reports"), s.reports);
    assert_eq!(recorder.counter("fabric.output_interrupts"), s.output_interrupts);
    assert_eq!(recorder.counter("fabric.fifo_refills"), s.fifo_refills);

    // A parallel scan accumulates by exactly its own reconciled stats —
    // guess runs and correction reruns never leak into the counters.
    let parallel = program.run_parallel(&input, Parallelism::Threads(4)).unwrap();
    let p = &parallel.exec;
    assert_eq!(recorder.counter("fabric.symbols"), s.symbols + p.symbols);
    assert_eq!(recorder.counter("fabric.cycles"), s.cycles + p.cycles);
    assert_eq!(recorder.counter("fabric.matched_total"), s.matched_total + p.matched_total);
    assert_eq!(recorder.counter("fabric.reports"), s.reports + p.reports);
    assert_eq!(recorder.counter("scan.stripes"), 4);
    assert_eq!(recorder.spans("scan.stripe.guess").len(), 4, "one guess span per stripe");
}

#[test]
fn telemetry_cache_counters_mirror_cache_stats() {
    let recorder = Arc::new(MemoryRecorder::new());
    let telemetry = cache_automaton::Telemetry::from_arc(recorder.clone());
    let ca = CacheAutomaton::builder().telemetry_handle(telemetry).build();
    let w = Benchmark::Spm.build(Scale::tiny(), 3);
    let _first = ca.compile_nfa(&w.nfa).unwrap(); // miss + insertion
    let _second = ca.compile_nfa(&w.nfa).unwrap(); // hit
    let stats = ca.cache_stats();
    assert!(stats.hits >= 1 && stats.misses >= 1, "test must exercise both paths");
    assert_eq!(recorder.counter("cache.hits"), stats.hits);
    assert_eq!(recorder.counter("cache.misses"), stats.misses);
    assert_eq!(recorder.counter("cache.insertions"), stats.insertions);
    assert_eq!(recorder.counter("cache.evictions"), stats.evictions);
    assert_eq!(recorder.counter("cache.rejected"), stats.rejected);
}

#[test]
fn worklist_loop_is_bit_identical_to_dense_reference() {
    // The sparse active-set scheduler must reproduce the dense reference
    // loop exactly — match streams, every ExecStats counter and the exit
    // snapshot — on every benchmark and both design points.
    for design in [Design::Performance, Design::Space] {
        let ca = CacheAutomaton::builder().design(design).optimize(Optimize::Never).build();
        for benchmark in Benchmark::all() {
            let w = benchmark.build(Scale::tiny(), 31);
            let input = w.input(8 * 1024, 13);
            let program = ca.compile_nfa(&w.nfa).unwrap_or_else(|e| panic!("{benchmark}: {e}"));
            let sparse = program.compiled().fabric().unwrap().run(&input);
            let dense = program
                .compiled()
                .fabric()
                .unwrap()
                .run_dense(&input, &ca_sim::RunOptions::default())
                .unwrap();
            assert_eq!(sparse.events, dense.events, "{benchmark} on {design}: events");
            assert_eq!(sparse.stats, dense.stats, "{benchmark} on {design}: stats");
            assert_eq!(sparse.snapshot, dense.snapshot, "{benchmark} on {design}: snapshot");
        }
    }
}

#[test]
fn fifo_refill_gauge_is_cumulative_across_chunks() {
    // The fabric.fifo_refills gauge is sampled against the global symbol
    // counter; a streaming session feeding many chunks must show one
    // monotone series (refills = position / 64), not a sawtooth that
    // re-zeroes at every chunk boundary.
    let recorder = Arc::new(MemoryRecorder::new());
    let telemetry = cache_automaton::Telemetry::from_arc(recorder.clone());
    let ca = CacheAutomaton::builder().telemetry_handle(telemetry).build();
    let w = Benchmark::Snort.build(Scale::tiny(), 11);
    let input = w.input(8 * 1024, 7);
    let program = ca.compile_nfa(&w.nfa).unwrap();

    let mut scanner = program.scanner();
    for piece in input.chunks(1000) {
        scanner.feed(piece);
    }
    let report = scanner.finish();

    let samples = recorder.gauges("fabric.fifo_refills");
    assert!(samples.len() >= 7, "8 KiB at one sample per 1024 symbols: got {}", samples.len());
    for pair in samples.windows(2) {
        assert!(pair[0].label < pair[1].label, "positions advance: {samples:?}");
        assert!(
            pair[0].value <= pair[1].value,
            "gauge never rewinds at a chunk boundary: {samples:?}"
        );
    }
    for s in &samples {
        assert_eq!(
            s.value,
            (s.label / 64) as f64,
            "refills at symbol {} reconcile with position",
            s.label
        );
    }
    // and the end-of-run counter still reconciles with ExecStats
    assert_eq!(recorder.counter("fabric.fifo_refills"), report.exec.fifo_refills);
}

#[test]
fn parallel_report_is_deterministic() {
    let w = Benchmark::ClamAv.build(Scale::tiny(), 47);
    let input = w.input(8 * 1024, 31);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let a = program.run_parallel(&input, Parallelism::Threads(4)).unwrap();
    let b = program.run_parallel(&input, Parallelism::Threads(4)).unwrap();
    assert_eq!(a.matches, b.matches);
    assert_eq!(a.exec, b.exec);
    // position-sorted, no duplicates
    assert!(a.matches.windows(2).all(|w| w[0] < w[1]));
}
