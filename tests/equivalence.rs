//! Workspace-level differential tests: for every synthesized benchmark the
//! compiled fabric (both designs) must reproduce the CPU engines' match
//! stream exactly, and the space-optimized automaton must preserve the
//! match language.

use ca_automata::engine::{BitsetEngine, Engine, SparseEngine};
use ca_workloads::{Benchmark, Scale};
use cache_automaton::{CacheAutomaton, Design, MatchEvent, Optimize};

fn sorted(mut ev: Vec<MatchEvent>) -> Vec<MatchEvent> {
    ev.sort();
    ev
}

#[test]
fn fabric_matches_cpu_on_every_benchmark_performance_design() {
    let ca = CacheAutomaton::builder().design(Design::Performance).build();
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), 17);
        let input = w.input(8 * 1024, 3);
        let expect = sorted(SparseEngine::new(&w.nfa).run(&input));
        let program = ca.compile_nfa(&w.nfa).unwrap_or_else(|e| panic!("{benchmark}: {e}"));
        let got = sorted(program.run(&input).matches);
        assert_eq!(expect, got, "{benchmark} diverged on CA_P");
    }
}

#[test]
fn fabric_matches_cpu_on_every_benchmark_space_design() {
    // Optimize::Never isolates the fabric comparison; the optimizer's
    // language preservation is tested separately below.
    let ca = CacheAutomaton::builder().design(Design::Space).optimize(Optimize::Never).build();
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), 23);
        let input = w.input(8 * 1024, 5);
        let expect = sorted(SparseEngine::new(&w.nfa).run(&input));
        let program = ca.compile_nfa(&w.nfa).unwrap_or_else(|e| panic!("{benchmark}: {e}"));
        let got = sorted(program.run(&input).matches);
        assert_eq!(expect, got, "{benchmark} diverged on CA_S");
    }
}

#[test]
fn space_optimization_preserves_language_on_every_benchmark() {
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), 31);
        let input = w.input(8 * 1024, 7);
        let merged = w.space_optimized();
        let before = sorted(SparseEngine::new(&w.nfa).run(&input));
        let after = sorted(SparseEngine::new(&merged).run(&input));
        assert_eq!(before, after, "{benchmark}: merging changed the language");
        assert!(merged.len() <= w.nfa.len(), "{benchmark}: merging grew the automaton");
    }
}

#[test]
fn dense_engine_agrees_on_every_benchmark() {
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), 41);
        let input = w.input(4 * 1024, 11);
        let sparse = sorted(SparseEngine::new(&w.nfa).run(&input));
        let dense = sorted(BitsetEngine::new(&w.nfa).run(&input));
        assert_eq!(sparse, dense, "{benchmark}: engines diverged");
    }
}

#[test]
fn designs_report_identical_matches() {
    for benchmark in [Benchmark::Snort, Benchmark::Levenshtein, Benchmark::Spm] {
        let w = benchmark.build(Scale::tiny(), 53);
        let input = w.input(16 * 1024, 13);
        let p = CacheAutomaton::builder()
            .design(Design::Performance)
            .build()
            .compile_nfa(&w.nfa)
            .unwrap();
        let s =
            CacheAutomaton::builder().design(Design::Space).build().compile_nfa(&w.nfa).unwrap();
        assert_eq!(
            sorted(p.run(&input).matches),
            sorted(s.run(&input).matches),
            "{benchmark}: designs disagree"
        );
    }
}

#[test]
fn compilation_is_deterministic_across_runs() {
    let w = Benchmark::ClamAv.build(Scale::tiny(), 61);
    let ca = CacheAutomaton::builder().design(Design::Space).build();
    let a = ca.compile_nfa(&w.nfa).unwrap();
    let b = ca.compile_nfa(&w.nfa).unwrap();
    assert_eq!(a.compiled().bitstream, b.compiled().bitstream);
}
