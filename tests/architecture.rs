//! Workspace-level architectural invariants: the published numbers the
//! models must reproduce, and the structural constraints every compiled
//! bitstream must satisfy.

use ca_sim::{
    area_for_stes, design_space, design_timing, pipeline_timing, reachability, CacheGeometry,
    DesignKind, RouteVia, TimingParams, WireLayer, STES_PER_PARTITION,
};
use ca_workloads::{Benchmark, Scale};
use cache_automaton::{CacheAutomaton, Design, Optimize};

#[test]
fn table3_frequencies() {
    let p = design_timing(DesignKind::Performance);
    assert_eq!(p.operating_freq_ghz(), 2.0);
    assert!((p.state_match_ps - 438.0).abs() < 1.0);
    let s = design_timing(DesignKind::Space);
    assert_eq!(s.operating_freq_ghz(), 1.2);
    assert!((s.state_match_ps - 687.0).abs() < 1.0);
}

#[test]
fn table4_ablations() {
    let params = TimingParams::default();
    let cases = [
        (DesignKind::Performance, false, WireLayer::GlobalMetal, 1.0),
        (DesignKind::Space, false, WireLayer::GlobalMetal, 0.5),
        (DesignKind::Performance, true, WireLayer::HBus, 1.5),
        (DesignKind::Space, true, WireLayer::HBus, 1.0),
    ];
    for (design, sa, wire, expect_ghz) in cases {
        let t = pipeline_timing(design, &params, sa, wire);
        assert_eq!(t.operating_freq_ghz(), expect_ghz, "{design} sa={sa} {wire:?}");
    }
}

#[test]
fn headline_speedups() {
    let ap_gbps = ca_baselines::ApModel::default().throughput_gbps();
    let p = design_timing(DesignKind::Performance).throughput_gbps() / ap_gbps;
    let s = design_timing(DesignKind::Space).throughput_gbps() / ap_gbps;
    assert!((p - 15.0).abs() < 0.1, "CA_P {p}x");
    assert!((s - 9.0).abs() < 0.1, "CA_S {s}x");
    assert_eq!(p.round() * ca_baselines::AP_OVER_CPU, 3840.0);
}

#[test]
fn figure10_design_space_shape() {
    let points = design_space();
    // frequency decreases, reachability increases across the CA points
    assert!(points[0].freq_ghz > points[1].freq_ghz);
    assert!(points[1].freq_ghz > points[2].freq_ghz);
    assert!(points[0].reachability < points[1].reachability);
    assert!(points[1].reachability < points[2].reachability);
    // AP point: far more area, far less frequency
    let ap = points.last().unwrap();
    assert!(ap.area_mm2_32k > 8.0 * points[2].area_mm2_32k);
    assert!((reachability(DesignKind::Performance) - 361.0).abs() < 20.0);
    assert!((reachability(DesignKind::Space) - 936.0).abs() < 75.0);
    assert!((area_for_stes(DesignKind::Performance, 32 * 1024).total_mm2() - 4.3).abs() < 0.2);
    assert!((area_for_stes(DesignKind::Space, 32 * 1024).total_mm2() - 4.6).abs() < 0.2);
}

#[test]
fn prototype_capacity_is_128k_stes() {
    let geom = CacheGeometry::for_design(DesignKind::Performance, 8);
    assert_eq!(geom.total_stes(), 128 * 1024);
}

/// Every compiled benchmark respects the hardware constraints: partition
/// occupancy, route budgets and switch topology (validated structurally).
#[test]
fn compiled_bitstreams_respect_architecture() {
    for benchmark in Benchmark::all() {
        let w = benchmark.build(Scale::tiny(), 71);
        for design in [Design::Performance, Design::Space] {
            let program = CacheAutomaton::builder()
                .design(design)
                .optimize(Optimize::Never)
                .build()
                .compile_nfa(&w.nfa)
                .unwrap_or_else(|e| panic!("{benchmark}/{design:?}: {e}"));
            let bs = &program.compiled().bitstream;
            bs.validate().unwrap_or_else(|e| panic!("{benchmark}/{design:?}: {e}"));
            for p in &bs.partitions {
                assert!(p.ste_count() <= STES_PER_PARTITION);
            }
            for r in &bs.routes {
                let src = bs.partitions[r.src_partition as usize].location;
                let dst = bs.partitions[r.dst_partition as usize].location;
                match r.via {
                    RouteVia::G1 => assert!(src.same_way(&dst)),
                    RouteVia::G4 => {
                        assert_eq!(design, Design::Space, "G4 only exists on CA_S");
                        assert_eq!(src.slice, dst.slice);
                    }
                }
            }
            // every mapped state accounted for
            assert_eq!(bs.ste_count(), w.nfa.len(), "{benchmark}/{design:?}");
        }
    }
}

/// Utilization equals whole partitions x 8 KB, never less than the states'
/// raw footprint.
#[test]
fn utilization_accounting() {
    let w = Benchmark::PowerEn.build(Scale::tiny(), 3);
    let program = CacheAutomaton::new().compile_nfa(&w.nfa).unwrap();
    let bytes = program.stats().utilization_bytes;
    assert_eq!(bytes % 8192, 0);
    assert!(bytes >= w.nfa.len() * 32); // 256 bits per STE
    assert_eq!(program.stats().partitions_used * 8192, bytes);
}
